"""Exact Gaussian-process regression with a Cholesky posterior.

The surrogate model behind HBO's Bayesian optimization (Eq. 6): after
observing a dataset D_t = {(z_τ, φ_τ)}, the GP defines for every candidate
configuration z a Gaussian posterior N(μ_t(z), σ_t²(z)) computed from the
kernel matrix. We standardize targets internally (zero mean, unit variance)
so kernel amplitude hyperparameters stay in a sane range regardless of the
cost scale, and escalate diagonal jitter when the covariance matrix is
numerically singular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular, LinAlgError

from repro.bo.kernels import Kernel, Matern, _as_2d
from repro.errors import GPFitError

_JITTERS = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)


@dataclass(frozen=True)
class GPPosterior:
    """Posterior mean and standard deviation at a batch of query points."""

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        if self.mean.shape != self.std.shape:
            raise GPFitError(
                f"mean/std shape mismatch: {self.mean.shape} vs {self.std.shape}"
            )


class Surrogate(Protocol):
    """Structural interface the acquisition functions score against.

    Both surrogate tiers — the exact :class:`GaussianProcess` and the
    budgeted :class:`~repro.bo.sparse.SparseGaussianProcess` — satisfy
    it; acquisition code never needs to know which tier produced the
    posterior (see ``docs/optimizer.md``).
    """

    def predict(self, x: np.ndarray) -> GPPosterior:
        """Posterior N(μ(x), σ²(x)) at each row of ``x``."""
        ...


class GaussianProcess:
    """Exact GP regression: fit on (X, y), predict N(μ, σ²) pointwise.

    This is the **exact tier**: every :meth:`fit` factorizes the full
    (n, n) covariance in O(n³) (with an O(n²) rank-1 :meth:`update` for
    the append-one case). For datasets past the scaling wall, use the
    **sparse tier** — :class:`~repro.bo.sparse.SparseGaussianProcess`
    conditions on a budgeted support subset and keeps fit cost flat in
    n. Both satisfy :class:`Surrogate`; `docs/optimizer.md` documents
    the trade-off and the parity tolerances.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to the paper's Matérn-5/2 with l = 1.
    noise:
        Observation noise variance added to the covariance diagonal.
        HBO's cost observations are genuinely noisy (they are runtime
        measurements), so a non-trivial default is used.
    normalize_y:
        Standardize the targets before fitting and undo on prediction.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-4,
        normalize_y: bool = True,
    ) -> None:
        if noise < 0:
            raise GPFitError(f"noise must be >= 0, got {noise}")
        self.kernel = kernel if kernel is not None else Matern(length_scale=1.0, nu=2.5)
        self.noise = float(noise)
        self.normalize_y = bool(normalize_y)
        self._x_train: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: Optional[np.ndarray] = None
        self._cho = None

    @property
    def is_fit(self) -> bool:
        return self._x_train is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._x_train is None else int(self._x_train.shape[0])

    @property
    def x_train(self) -> np.ndarray:
        """The (n, d) inputs the posterior currently conditions on."""
        if self._x_train is None:
            raise GPFitError("x_train read before fit()")
        return self._x_train.copy()

    @property
    def y_train(self) -> np.ndarray:
        """The raw (un-standardized) targets of the current fit."""
        if self._x_train is None:
            raise GPFitError("y_train read before fit()")
        return self._y_raw.copy()

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``x`` (n, d) and ``y`` (n,)."""
        x = _as_2d(x)
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise GPFitError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if x.shape[0] == 0:
            raise GPFitError("cannot fit a GP on zero observations")
        if not np.all(np.isfinite(x)) or not np.all(np.isfinite(y)):
            raise GPFitError("GP training data contains NaN or inf")

        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            spread = float(np.std(y))
            self._y_std = spread if spread > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        y_n = (y - self._y_mean) / self._y_std

        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise
        cho = None
        last_error: Optional[Exception] = None
        for jitter in _JITTERS:
            try:
                cho = cho_factor(
                    k + jitter * np.eye(k.shape[0]), lower=True, check_finite=False
                )
                break
            except LinAlgError as exc:  # singular even with jitter
                last_error = exc
        if cho is None:
            raise GPFitError(
                f"covariance matrix not positive definite after jitter "
                f"escalation up to {_JITTERS[-1]}: {last_error}"
            )
        self._cho = cho
        self._alpha = cho_solve(cho, y_n, check_finite=False)
        self._y_train_normalized = y_n
        self._x_train = x
        self._y_raw = y.copy()
        self._jitter = jitter
        return self

    def update(self, x_new: np.ndarray, y_new: float) -> "GaussianProcess":
        """Condition on one more observation via a rank-1 Cholesky extension.

        BO adds exactly one observation per ``tell``; refitting from
        scratch repeats an O(n³) factorization every iteration. The
        Cholesky factor of the bordered covariance matrix extends in
        O(n²): with ``K_new = [[K, k], [kᵀ, κ]]`` and ``K = L Lᵀ``,

            L_new = [[L, 0], [l₁₂ᵀ, l₂₂]],  L l₁₂ = k,
            l₂₂ = √(κ − l₁₂ᵀ l₁₂).

        Target standardization and α are recomputed over the full
        dataset (both are O(n²) given the factor). When the new point is
        (numerically) a duplicate, l₂₂² degenerates and the method falls
        back to a full :meth:`fit` with jitter escalation. The posterior
        matches a full refit to floating-point accuracy (not bitwise —
        the factor is assembled in a different operation order).
        """
        if not self.is_fit:
            raise GPFitError("update() called before fit()")
        assert self._x_train is not None
        row = np.asarray(x_new, dtype=float).ravel()[np.newaxis, :]
        y_val = float(y_new)
        if row.shape[1] != self._x_train.shape[1]:
            raise GPFitError(
                f"update point has dim {row.shape[1]}, "
                f"trained on dim {self._x_train.shape[1]}"
            )
        if not np.all(np.isfinite(row)) or not np.isfinite(y_val):
            raise GPFitError("GP update data contains NaN or inf")

        x_all = np.vstack([self._x_train, row])
        y_all = np.append(self._y_raw, y_val)
        n = self.n_observations
        l_mat = self._cho[0]  # lower triangle holds L; upper is unused
        k_vec = self.kernel(row, self._x_train).ravel()
        kappa = float(self.kernel.diag(row)[0]) + self.noise + self._jitter
        l12 = solve_triangular(l_mat, k_vec, lower=True, check_finite=False)
        l22_sq = kappa - float(l12 @ l12)
        if l22_sq <= 1e-12:
            # Numerically dependent point: the extension would lose
            # positive definiteness. Refit with jitter escalation.
            return self.fit(x_all, y_all)
        c_new = np.zeros((n + 1, n + 1))
        c_new[:n, :n] = l_mat
        c_new[n, :n] = l12
        c_new[n, n] = np.sqrt(l22_sq)

        if self.normalize_y:
            self._y_mean = float(np.mean(y_all))
            spread = float(np.std(y_all))
            self._y_std = spread if spread > 1e-12 else 1.0
        y_n = (y_all - self._y_mean) / self._y_std
        self._cho = (c_new, True)
        self._alpha = cho_solve(self._cho, y_n, check_finite=False)
        self._y_train_normalized = y_n
        self._x_train = x_all
        self._y_raw = y_all
        return self

    def predict(self, x: np.ndarray) -> GPPosterior:
        """Posterior N(μ(x), σ²(x)) at each row of ``x``."""
        if not self.is_fit:
            raise GPFitError("predict() called before fit()")
        x = _as_2d(x)
        k_star = self.kernel(x, self._x_train)  # (m, n)
        mean_n = k_star @ self._alpha
        # var = k(x,x) - k* K^{-1} k*^T, diagonal only.
        v = cho_solve(self._cho, k_star.T, check_finite=False)  # (n, m)
        var_n = self.kernel.diag(x) - np.sum(k_star.T * v, axis=0)
        var_n = np.clip(var_n, 1e-12, None)
        mean = mean_n * self._y_std + self._y_mean
        std = np.sqrt(var_n) * self._y_std
        return GPPosterior(mean=mean, std=std)

    def log_marginal_likelihood(self) -> float:
        """Log p(y | X) of the fitted model (standardized targets)."""
        if not self.is_fit:
            raise GPFitError("log_marginal_likelihood() called before fit()")
        n = self.n_observations
        l_mat = self._cho[0]
        data_fit = float(self._y_train_normalized @ self._alpha)
        log_det = 2.0 * float(np.sum(np.log(np.diag(l_mat))))
        return -0.5 * data_fit - 0.5 * log_det - 0.5 * n * np.log(2.0 * np.pi)

    def optimized_over_length_scales(
        self,
        x: np.ndarray,
        y: np.ndarray,
        length_scales: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    ) -> "GaussianProcess":
        """Model selection: refit over a length-scale grid, keep the fit
        with the highest log marginal likelihood.

        The paper fixes l = 1 (Eq. 7); this utility exists for deployments
        whose cost surface is rougher or smoother than the paper's. Only
        Matérn/RBF kernels (anything exposing ``length_scale``, ``nu``/
        ``variance``) are supported.
        """
        if not length_scales:
            raise GPFitError("length_scales grid must be non-empty")
        base = self.kernel
        best_gp: Optional[GaussianProcess] = None
        best_lml = -np.inf
        for length_scale in length_scales:
            if length_scale <= 0:
                raise GPFitError(f"length scales must be > 0, got {length_scale}")
            if isinstance(base, Matern):
                kernel: Kernel = Matern(
                    length_scale=length_scale, nu=base.nu, variance=base.variance
                )
            elif hasattr(base, "variance"):
                kernel = type(base)(
                    length_scale=length_scale, variance=base.variance  # type: ignore[call-arg]
                )
            else:
                raise GPFitError(
                    f"cannot vary length scale of kernel {type(base).__name__}"
                )
            candidate = GaussianProcess(
                kernel=kernel, noise=self.noise, normalize_y=self.normalize_y
            ).fit(x, y)
            lml = candidate.log_marginal_likelihood()
            if lml > best_lml:
                best_gp, best_lml = candidate, lml
        assert best_gp is not None
        return best_gp

    def sample_posterior(
        self, x: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw joint posterior function samples at rows of ``x``.

        Returns an array of shape ``(n_samples, len(x))``. Used by tests to
        check posterior consistency, and available for Thompson-sampling
        style extensions.
        """
        if not self.is_fit:
            raise GPFitError("sample_posterior() called before fit()")
        x = _as_2d(x)
        k_star = self.kernel(x, self._x_train)
        mean_n = k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T, check_finite=False)
        cov_n = self.kernel(x, x) - k_star @ v
        cov_n += 1e-10 * np.eye(cov_n.shape[0])
        draws = rng.multivariate_normal(mean_n, cov_n, size=n_samples, method="cholesky")
        return draws * self._y_std + self._y_mean

"""AI task instances and the paper's tasksets (Table II).

An :class:`AITask` is one continuously-inferring instance of a model (the
paper runs several instances of the same model, e.g. "deeplabv3_5"). A
:class:`TaskSet` is the ordered collection HBO schedules. Factories build
the two tasksets of Table II:

- **CF1** (6 tasks): mnist ×1, mobilenetDetv1 ×1, model-metadata ×2,
  mobilenet-v1 ×1, efficientclass-lite0 ×1. On the Pixel 7 three of these
  prefer the GPU delegate (mnist, both model-metadata) and three prefer
  NNAPI — exactly the split §V-B describes.
- **CF2** (3 tasks): mnist ×1, mobilenetDetv1 ×1, efficientclass-lite0 ×1
  (one GPU-preferring, two NNAPI-preferring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.device.profiles import PIXEL7, StaticProfile
from repro.device.resources import Resource
from repro.errors import ConfigurationError
from repro.models.zoo import ModelZoo


@dataclass(frozen=True)
class AITask:
    """One running instance of a model."""

    task_id: str
    model: str
    profile: StaticProfile

    @property
    def expected_latency(self) -> float:
        """τ^e of Eq. 4: lowest isolation latency across resources."""
        _, latency = self.profile.best_resource()
        return latency

    @property
    def affinity(self) -> Resource:
        resource, _ = self.profile.best_resource()
        return resource


class TaskSet:
    """An ordered, immutable collection of AI task instances."""

    def __init__(self, name: str, tasks: Sequence[AITask]) -> None:
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ConfigurationError(f"duplicate task ids: {dupes}")
        self.name = name
        self._tasks: Tuple[AITask, ...] = tuple(tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[AITask]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> AITask:
        return self._tasks[index]

    @property
    def task_ids(self) -> Tuple[str, ...]:
        return tuple(t.task_id for t in self._tasks)

    def by_id(self, task_id: str) -> AITask:
        for task in self._tasks:
            if task.task_id == task_id:
                return task
        raise ConfigurationError(
            f"unknown task id {task_id!r} in taskset {self.name!r}"
        )

    def expected_latencies(self) -> Dict[str, float]:
        """τ^e per task — the denominator of Eq. 4."""
        return {t.task_id: t.expected_latency for t in self._tasks}

    def affinity_allocation(self) -> Dict[str, Resource]:
        """Each task on its isolation-best resource (the SMQ/SML policy)."""
        return {t.task_id: t.affinity for t in self._tasks}

    def count_by_model(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for task in self._tasks:
            counts[task.model] = counts.get(task.model, 0) + 1
        return counts


def build_taskset(
    name: str, model_counts: Sequence[Tuple[str, int]], device: str = PIXEL7
) -> TaskSet:
    """Build a taskset from (model, instance_count) pairs.

    Instance ids follow the paper's naming: a single instance keeps the
    model name; multiple instances get ``_1``, ``_2``, ... suffixes
    (e.g. ``model-metadata_1``).
    """
    zoo = ModelZoo(device)
    tasks: List[AITask] = []
    for model, count in model_counts:
        if count < 1:
            raise ConfigurationError(f"{model!r}: count must be >= 1, got {count}")
        profile = zoo.profile(model)
        for i in range(count):
            task_id = profile.model if count == 1 else f"{profile.model}_{i + 1}"
            tasks.append(AITask(task_id=task_id, model=profile.model, profile=profile))
    return TaskSet(name=name, tasks=tasks)


def taskset_cf1(device: str = PIXEL7) -> TaskSet:
    """Taskset CF1 of Table II (6 tasks)."""
    return build_taskset(
        "CF1",
        [
            ("mnist", 1),
            ("mobilenetDetv1", 1),
            ("model-metadata", 2),
            ("mobilenet-v1", 1),
            ("efficientclass-lite0", 1),
        ],
        device=device,
    )


def taskset_cf2(device: str = PIXEL7) -> TaskSet:
    """Taskset CF2 of Table II (3 tasks)."""
    return build_taskset(
        "CF2",
        [
            ("mnist", 1),
            ("mobilenetDetv1", 1),
            ("efficientclass-lite0", 1),
        ],
        device=device,
    )

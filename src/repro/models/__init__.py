"""AI model zoo and tasksets.

- :mod:`repro.models.zoo` — the model registry (the stand-in for the
  TensorFlow Lite hosted-models repository the paper pulls from).
- :mod:`repro.models.ops` — synthetic per-model operator graphs used to
  make NNAPI's op-splitting concrete (which ops land on the NPU vs GPU).
- :mod:`repro.models.tasks` — task instances and the paper's tasksets
  CF1/CF2 (Table II).
"""

from repro.models.ops import Op, OpGraph, build_op_graph, partition_for_nnapi
from repro.models.tasks import AITask, TaskSet, taskset_cf1, taskset_cf2
from repro.models.zoo import ModelZoo

__all__ = [
    "AITask",
    "ModelZoo",
    "Op",
    "OpGraph",
    "TaskSet",
    "build_op_graph",
    "partition_for_nnapi",
    "taskset_cf1",
    "taskset_cf2",
]

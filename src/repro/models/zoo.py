"""Model registry — the stand-in for the TFLite hosted-models repo.

The paper uses pre-trained TensorFlow Lite models [16]; only their latency
profiles and delegate compatibility matter to the scheduler (§III-A leaves
accuracy out of scope). :class:`ModelZoo` wraps the Table I profile data
for one device and adds convenience queries the rest of the library uses:
affinity (best resource in isolation), the expected latency τ^e of Eq. 4,
and the (task, resource) priority entries that feed Algorithm 1's queue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.device.profiles import (
    GALAXY_S22,
    PIXEL7,
    StaticProfile,
    canonical_model_name,
    device_names,
    get_profile,
    model_names,
)
from repro.device.resources import ALL_RESOURCES, Resource
from repro.errors import UnknownModelError


class ModelZoo:
    """All models known for a given device, with profile queries."""

    def __init__(self, device: str = PIXEL7) -> None:
        if device not in device_names():
            raise UnknownModelError(
                f"unknown device {device!r}; expected one of {device_names()}"
            )
        self.device = device

    def names(self) -> Tuple[str, ...]:
        return model_names(self.device)

    def profile(self, model: str) -> StaticProfile:
        return get_profile(self.device, model)

    def supports(self, model: str, resource: Resource) -> bool:
        return self.profile(model).supports(resource)

    def compatible_resources(self, model: str) -> List[Resource]:
        profile = self.profile(model)
        return [res for res in ALL_RESOURCES if profile.supports(res)]

    def affinity(self, model: str) -> Resource:
        """The resource where the model is fastest in isolation."""
        resource, _ = self.profile(model).best_resource()
        return resource

    def expected_latency(self, model: str) -> float:
        """τ^e of Eq. 4: the lowest isolation latency across resources."""
        _, latency = self.profile(model).best_resource()
        return latency

    def io_bytes(self, model: str) -> Tuple[int, int]:
        """(input, output) wire bytes of one offloaded inference."""
        profile = self.profile(model)
        return profile.input_bytes, profile.output_bytes

    def payload_bytes(self, model: str) -> int:
        """Round-trip wire bytes of one offloaded inference (in + out)."""
        profile = self.profile(model)
        return int(profile.input_bytes + profile.output_bytes)

    def isolation_table(self) -> Dict[str, Dict[Resource, Optional[float]]]:
        """The device's Table I slice: model → resource → ms (None = NA)."""
        return {
            name: dict(self.profile(name).latency_ms) for name in self.names()
        }

    def priority_entries(
        self, models: List[str]
    ) -> List[Tuple[float, str, Resource]]:
        """(latency, model, resource) entries for Algorithm 1's queue ``P``.

        One entry per compatible (model, resource) pair, for the given
        *instance list* ``models`` (duplicates allowed — each instance gets
        its own entries). Sorted by the caller via heap push.
        """
        entries = []
        for model in models:
            profile = self.profile(model)
            for resource in ALL_RESOURCES:
                if profile.supports(resource):
                    entries.append(
                        (profile.latency(resource), canonical_model_name(model), resource)
                    )
        return entries


__all__ = ["ModelZoo", "GALAXY_S22", "PIXEL7"]

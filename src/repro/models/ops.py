"""Synthetic operator graphs and NNAPI-style partitioning.

The real NNAPI delegate walks a model's operator graph and assigns each op
to the best available accelerator, falling back to the GPU (or CPU) for
unsupported ops — that is the mechanism behind the per-model
``npu_coverage`` numbers in :mod:`repro.device.profiles`. To keep that
mechanism inspectable (and testable) rather than a bare constant, this
module synthesizes a deterministic op graph per model whose NPU-supported
compute fraction matches the profile's coverage, and implements the greedy
partitioner that NNAPI applies.

The contention model consumes only the aggregate coverage, so these graphs
are a faithful *generator* of that number, not an extra source of truth.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.device.profiles import StaticProfile
from repro.device.resources import Processor
from repro.errors import ConfigurationError

#: Op kinds that mobile NPUs typically execute natively.
NPU_FRIENDLY_KINDS = ("conv2d", "dwconv2d", "fc", "pool", "add")
#: Op kinds that typically fall back to GPU/CPU paths.
NPU_UNFRIENDLY_KINDS = ("resize", "transpose_conv", "custom", "argmax", "softmax_2d")

_TASK_TYPE_OP_COUNT = {
    "IS": 38,  # segmentation backbones + decoder
    "OD": 34,  # detector backbone + heads + NMS-ish tail
    "IC": 28,  # classifier backbone
    "GD": 20,  # small gesture network
    "DC": 12,  # tiny mnist net
}


@dataclass(frozen=True)
class Op:
    """One operator in a model graph."""

    name: str
    kind: str
    flops: float
    npu_supported: bool

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ConfigurationError(f"op {self.name!r}: flops must be > 0")


@dataclass(frozen=True)
class OpGraph:
    """A linear operator graph (TFLite graphs are topologically ordered)."""

    model: str
    ops: Tuple[Op, ...]

    def total_flops(self) -> float:
        return sum(op.flops for op in self.ops)

    def npu_flops(self) -> float:
        return sum(op.flops for op in self.ops if op.npu_supported)

    def npu_coverage(self) -> float:
        """Fraction of compute that NNAPI can place on the NPU."""
        total = self.total_flops()
        return self.npu_flops() / total if total > 0 else 0.0

    def partition_count(self) -> int:
        """Number of contiguous same-target partitions (delegate hand-offs
        happen at each boundary, so more partitions = more comm cost)."""
        if not self.ops:
            return 0
        count = 1
        for prev, cur in zip(self.ops, self.ops[1:]):
            if prev.npu_supported != cur.npu_supported:
                count += 1
        return count


def _stable_fractions(model: str, n: int) -> List[float]:
    """Deterministic pseudo-random positive weights summing to 1."""
    weights = []
    for i in range(n):
        digest = hashlib.sha256(f"{model}:{i}".encode()).digest()
        weights.append(1.0 + digest[0] / 64.0)
    total = sum(weights)
    return [w / total for w in weights]


def build_op_graph(profile: StaticProfile) -> OpGraph:
    """Synthesize an op graph whose NPU coverage matches the profile.

    Ops are laid out as a realistic mobile network: NPU-friendly convs in
    the body with occasional unfriendly ops (resizes, custom ops) — a
    segmentation model ends in an unfriendly decoder tail. The marked
    NPU-supported flops fraction is within ~2% of ``profile.npu_coverage``
    (exactly 0 when coverage is 0).
    """
    n_ops = _TASK_TYPE_OP_COUNT.get(profile.task_type, 24)
    fractions = _stable_fractions(profile.model, n_ops)
    target = profile.npu_coverage

    ops: List[Op] = []
    supported_flops = 0.0
    # Greedy front-to-back marking: mark ops NPU-supported until the
    # supported fraction reaches the target; the tail becomes fallback ops.
    # This mirrors how real graphs look (exotic ops cluster in decoders).
    for i, frac in enumerate(fractions):
        make_supported = supported_flops + frac <= target + 1e-9
        if make_supported:
            supported_flops += frac
            kind = NPU_FRIENDLY_KINDS[i % len(NPU_FRIENDLY_KINDS)]
        else:
            kind = NPU_UNFRIENDLY_KINDS[i % len(NPU_UNFRIENDLY_KINDS)]
        ops.append(
            Op(
                name=f"{profile.model}/op{i:02d}_{kind}",
                kind=kind,
                flops=frac,
                npu_supported=make_supported,
            )
        )
    return OpGraph(model=profile.model, ops=tuple(ops))


def partition_for_nnapi(graph: OpGraph) -> Dict[Processor, List[Op]]:
    """NNAPI-style greedy partition: supported ops → NPU, rest → GPU."""
    assignment: Dict[Processor, List[Op]] = {Processor.NPU: [], Processor.GPU: []}
    for op in graph.ops:
        target = Processor.NPU if op.npu_supported else Processor.GPU
        assignment[target].append(op)
    return assignment

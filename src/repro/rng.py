"""Deterministic random-number plumbing.

Every stochastic component in the library (BO initialization, measurement
noise, rater noise, workload jitter) draws from a ``numpy.random.Generator``
handed to it explicitly. This module centralizes construction so that a
single integer seed reproduces an entire experiment, and so that independent
subsystems get decorrelated streams via ``spawn``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged so callers can thread one stream through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Uses ``SeedSequence.spawn`` under the hood, so children never collide
    even when the parent stream is also used directly.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream.
        children = np.random.SeedSequence(int(seed.integers(0, 2**63))).spawn(n)
    else:
        children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


def spawn_shard_rngs(
    seed: SeedLike, shard_sizes: Sequence[int]
) -> List[List[np.random.Generator]]:
    """Split ``seed`` into contiguous per-shard generator cohorts.

    Spawns ``sum(shard_sizes)`` children exactly as :func:`spawn_rngs` would
    and partitions them into contiguous slices, so concatenating the shards
    in order reproduces the unsharded stream list bit-for-bit:

        ``spawn_shard_rngs(s, [a, b]) == [spawn_rngs(s, a+b)[:a],
        spawn_rngs(s, a+b)[a:]]``

    This is what lets a sharded fleet run byte-identical to ``shards=1``:
    shard k's sessions draw from the very same generators they would have
    owned in a single-process run.
    """
    sizes = [int(s) for s in shard_sizes]
    if any(s < 0 for s in sizes):
        raise ValueError(f"shard sizes must be >= 0, got {sizes}")
    flat = spawn_rngs(seed, sum(sizes))
    shards: List[List[np.random.Generator]] = []
    start = 0
    for size in sizes:
        shards.append(flat[start : start + size])
        start += size
    return shards


def stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an endless sequence of independent generators from ``seed``."""
    if isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    while True:
        yield np.random.default_rng(root.spawn(1)[0])


def derive_seed(seed: SeedLike, *labels: object) -> int:
    """Derive a stable child seed from ``seed`` and hashable ``labels``.

    Useful when an experiment wants per-run seeds keyed by run index or
    scenario name without keeping generator objects around.
    """
    base = 0 if seed is None else (
        int(make_rng(seed).integers(0, 2**31)) if isinstance(seed, np.random.Generator) else int(seed)
    )
    h = (base * 0x9E3779B97F4A7C15) % 2**64
    for label in labels:
        for byte in repr(label).encode():
            h = ((h ^ byte) * 0x100000001B3) % 2**64
    return int(h % (2**31 - 1))

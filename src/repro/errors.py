"""Exception hierarchy for the HBO reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries. Each subclass corresponds to a
subsystem; the message always carries enough context to diagnose the failure
without a debugger (offending value, valid range, resource name, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SearchSpaceError(ConfigurationError):
    """A point violates the optimizer's search-space constraints."""


class GPFitError(ReproError):
    """The Gaussian-process surrogate could not be fit (e.g. singular
    covariance even after jitter escalation)."""


class DeviceError(ReproError):
    """A device/SoC simulation request was invalid."""


class IncompatibleDelegateError(DeviceError):
    """An AI model was assigned to a delegate it does not support
    (the paper's Table I marks these combinations as "NA")."""

    def __init__(self, model: str, resource: str) -> None:
        super().__init__(
            f"model {model!r} is not compatible with resource {resource!r}"
        )
        self.model = model
        self.resource = resource


class UnknownModelError(DeviceError):
    """A model name was not found in the registry for the active device."""


class AllocationError(ReproError):
    """The heuristic allocator could not produce a feasible assignment."""


class MeshError(ReproError):
    """A mesh operation (decimation, generation) received invalid input."""


class SceneError(ReproError):
    """A scene operation (placement, distance update) was invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured or produced no data."""


class FleetError(ReproError):
    """The fleet scheduler or shared optimizer service reached an
    inconsistent state (duplicate session ids, mismatched search spaces,
    a run that never drains)."""


class EdgeError(ReproError):
    """The edge offloading subsystem was misused (unknown tenant, a task
    offloaded without an edge runtime, invalid link/server parameters)."""


class UnknownTenantError(EdgeError):
    """A tenant id was presented to an edge server or topology that does
    not currently hold it — a demand update or release for a session that
    never registered, or a double release. Carries the tenant id and the
    server name so a fleet-sized trace pinpoints the stale handle."""

    def __init__(self, tenant_id: str, server: str, operation: str) -> None:
        super().__init__(
            f"{operation}: tenant {tenant_id!r} is not registered on "
            f"server {server!r} (released twice, or never admitted?)"
        )
        self.tenant_id = tenant_id
        self.server = server
        self.operation = operation


class ScenarioError(ReproError):
    """A scenario generator or catalog request was invalid (unknown
    scenario name, malformed spec JSON, axis parameters outside their
    documented ranges, a compiled schedule that violates the fleet's
    admission invariants)."""


class ObservabilityError(ReproError):
    """A tracing or metrics request was invalid (malformed metric name,
    mismatched histogram buckets, unbalanced span close, a trace file
    that does not parse as Chrome trace events)."""

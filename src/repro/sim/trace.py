"""Session telemetry: what happened when.

The monitoring engine records a :class:`RewardSample` at every monitoring
interval (the blue points of the paper's Fig. 8) and an
:class:`ActivationRecord` per HBO activation (the boxed regions). The
resulting :class:`SessionTrace` is what the Fig. 8 bench renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class RewardSample:
    """One monitoring observation of the live reward B_t."""

    time_s: float
    reward: float
    n_objects: int
    during_activation: bool = False
    event: Optional[str] = None  # scene event fired at this step, if any


@dataclass(frozen=True)
class ActivationRecord:
    """One HBO activation: when it ran and what it settled on."""

    start_time_s: float
    end_time_s: float
    trigger: str  # what the policy reacted to
    best_cost: float
    best_triangle_ratio: float
    reward_before: float
    reward_after: float
    n_iterations: int


@dataclass
class SessionTrace:
    """Everything recorded over one scripted session."""

    samples: List[RewardSample] = field(default_factory=list)
    activations: List[ActivationRecord] = field(default_factory=list)

    def add_sample(self, sample: RewardSample) -> None:
        if self.samples and sample.time_s < self.samples[-1].time_s:
            raise SimulationError(
                f"trace samples must be time-ordered: {sample.time_s} after "
                f"{self.samples[-1].time_s}"
            )
        self.samples.append(sample)

    def add_activation(self, record: ActivationRecord) -> None:
        self.activations.append(record)

    @property
    def n_activations(self) -> int:
        return len(self.activations)

    def reward_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, rewards) arrays of the monitoring samples."""
        if not self.samples:
            return np.empty(0), np.empty(0)
        times = np.asarray([s.time_s for s in self.samples])
        rewards = np.asarray([s.reward for s in self.samples])
        return times, rewards

    def activation_windows(self) -> List[Tuple[float, float]]:
        """(start, end) time spans of activations (Fig. 8's boxes)."""
        return [(a.start_time_s, a.end_time_s) for a in self.activations]

    def events(self) -> List[Tuple[float, str]]:
        """Scene events observed during the session."""
        return [(s.time_s, s.event) for s in self.samples if s.event]

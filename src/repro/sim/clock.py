"""Discrete simulation clock (and the sanctioned wall-clock shim).

The paper's experiments are wall-clock sessions (Fig. 2 and Fig. 8 have
time axes in seconds); control runs in fixed periods. :class:`SimClock`
keeps simulated seconds decoupled from host time so a 6-minute session
replays in milliseconds and every experiment is deterministic.

Reprolint rule RL001 bans host-clock reads everywhere except this module:
code that genuinely needs wall time — only the observability layer's
optional span timings (:mod:`repro.obs.tracing`) — must go through
:func:`wall_now_ms`, which keeps every host-clock read greppable and the
resulting values clearly marked as non-reproducible.
"""

from __future__ import annotations

import time

from repro.errors import SimulationError


def wall_now_ms() -> float:
    """Host wall-clock milliseconds from a monotonic origin.

    Observability-only: values from this shim never feed simulation
    state, exports compared across runs, or any reproducibility
    assertion — they exist so a trace can report how long a span took on
    the host, next to its deterministic sim-time bounds.
    """
    return time.perf_counter() * 1000.0


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now

    def advance(self, dt_s: float) -> float:
        """Move time forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise SimulationError(f"cannot advance time by {dt_s} s")
        self._now += dt_s
        return self._now

    def advance_to(self, t_s: float) -> float:
        """Jump to an absolute time (must not move backwards)."""
        if t_s < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now} s to {t_s} s"
            )
        self._now = float(t_s)
        return self._now

    def reset(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

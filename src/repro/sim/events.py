"""Scene events for scripted sessions.

Each event carries a firing time and an ``apply(scene)`` mutation. The
monitoring engine fires due events as the clock advances — this is how the
Fig. 8 experiment scripts "the automated addition of 10 virtual objects
... and the user distance change around t = 320 s".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.ar.objects import VirtualObject
from repro.ar.scene import Scene
from repro.errors import SimulationError


@dataclass(frozen=True)
class SceneEvent(ABC):
    """Base: something that changes the scene at a point in time."""

    time_s: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise SimulationError(f"event time must be >= 0, got {self.time_s}")

    @abstractmethod
    def apply(self, scene: Scene) -> str:
        """Mutate the scene; return a short description for the trace."""


@dataclass(frozen=True)
class ObjectPlacement(SceneEvent):
    """Place an object instance at a world position."""

    instance_id: str = ""
    obj: VirtualObject = None  # type: ignore[assignment]
    position: Tuple[float, float, float] = (0.0, 0.0, 1.0)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.instance_id:
            raise SimulationError("ObjectPlacement needs an instance_id")
        if self.obj is None:
            raise SimulationError(
                f"ObjectPlacement {self.instance_id!r} needs an object"
            )

    def apply(self, scene: Scene) -> str:
        scene.add(self.instance_id, self.obj, self.position)
        return (
            f"place {self.instance_id} "
            f"({self.obj.max_triangles:,} triangles)"
        )


@dataclass(frozen=True)
class ObjectRemoval(SceneEvent):
    """Remove an object instance from the scene."""

    instance_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.instance_id:
            raise SimulationError("ObjectRemoval needs an instance_id")

    def apply(self, scene: Scene) -> str:
        scene.remove(self.instance_id)
        return f"remove {self.instance_id}"


@dataclass(frozen=True)
class DistanceChange(SceneEvent):
    """Move the user to a new position (changes every object distance)."""

    user_position: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def apply(self, scene: Scene) -> str:
        scene.move_user(self.user_position)
        return f"user moves to {tuple(round(c, 2) for c in self.user_position)}"


def validate_script(events: Sequence[SceneEvent]) -> Tuple[SceneEvent, ...]:
    """Sort a script by time and sanity-check it (unique placement ids)."""
    ordered = tuple(sorted(events, key=lambda e: e.time_s))
    placed = set()
    for event in ordered:
        if isinstance(event, ObjectPlacement):
            if event.instance_id in placed:
                raise SimulationError(
                    f"duplicate placement of {event.instance_id!r} in script"
                )
            placed.add(event.instance_id)
        elif isinstance(event, ObjectRemoval):
            if event.instance_id not in placed:
                raise SimulationError(
                    f"removal of never-placed {event.instance_id!r} in script"
                )
            placed.discard(event.instance_id)
    return ordered

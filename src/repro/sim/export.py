"""JSON export of runs and session traces.

Real deployments archive tuning sessions for offline analysis; these
helpers serialize the library's result objects into plain JSON-compatible
dictionaries (and back-of-envelope loaders for the structures that round
trip). Everything is standard-library ``json`` — no schema dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.fleet.scheduler import FleetResult
    from repro.fleet.telemetry import FleetSessionReport
    from repro.obs.metrics import MetricsRegistry

from repro.core.controller import HBORunResult
from repro.core.system import Measurement
from repro.device.resources import Resource, resource_from_name
from repro.errors import ExperimentError
from repro.sim.trace import ActivationRecord, RewardSample, SessionTrace

PathLike = Union[str, Path]


def measurement_to_dict(measurement: Measurement) -> Dict[str, Any]:
    """Serialize one control-period measurement."""
    return {
        "latencies_ms": dict(measurement.latencies_ms),
        "epsilon": measurement.epsilon,
        "quality": measurement.quality,
        "triangle_ratio": measurement.triangle_ratio,
        "allocation": {t: str(r) for t, r in measurement.allocation.items()},
    }


def run_result_to_dict(result: HBORunResult) -> Dict[str, Any]:
    """Serialize a full activation: every iteration plus the selection."""
    if not result.iterations:
        raise ExperimentError("cannot export an empty run result")
    return {
        "best_index": result.best_index,
        "iterations": [
            {
                "z": [float(v) for v in iteration.z],
                "proportions": [float(v) for v in iteration.proportions],
                "triangle_ratio": iteration.triangle_ratio,
                "allocation": {
                    t: str(r) for t, r in iteration.allocation.items()
                },
                "object_ratios": {
                    k: float(v) for k, v in iteration.object_ratios.items()
                },
                "cost": iteration.cost,
                "measurement": measurement_to_dict(iteration.measurement),
            }
            for iteration in result.iterations
        ],
        "final_measurement": (
            measurement_to_dict(result.final_measurement)
            if result.final_measurement is not None
            else None
        ),
    }


def trace_to_dict(trace: SessionTrace) -> Dict[str, Any]:
    """Serialize a monitored-session trace (Fig. 8-style data)."""
    return {
        "samples": [
            {
                "time_s": s.time_s,
                "reward": s.reward,
                "n_objects": s.n_objects,
                "during_activation": s.during_activation,
                "event": s.event,
            }
            for s in trace.samples
        ],
        "activations": [
            {
                "start_time_s": a.start_time_s,
                "end_time_s": a.end_time_s,
                "trigger": a.trigger,
                "best_cost": a.best_cost,
                "best_triangle_ratio": a.best_triangle_ratio,
                "reward_before": a.reward_before,
                "reward_after": a.reward_after,
                "n_iterations": a.n_iterations,
            }
            for a in trace.activations
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> SessionTrace:
    """Rebuild a :class:`SessionTrace` from its exported form."""
    trace = SessionTrace()
    for s in data.get("samples", []):
        trace.add_sample(
            RewardSample(
                time_s=float(s["time_s"]),
                reward=float(s["reward"]),
                n_objects=int(s["n_objects"]),
                during_activation=bool(s.get("during_activation", False)),
                event=s.get("event"),
            )
        )
    for a in data.get("activations", []):
        trace.add_activation(
            ActivationRecord(
                start_time_s=float(a["start_time_s"]),
                end_time_s=float(a["end_time_s"]),
                trigger=str(a["trigger"]),
                best_cost=float(a["best_cost"]),
                best_triangle_ratio=float(a["best_triangle_ratio"]),
                reward_before=float(a["reward_before"]),
                reward_after=float(a["reward_after"]),
                n_iterations=int(a["n_iterations"]),
            )
        )
    return trace


def fleet_report_to_dict(report: "FleetSessionReport") -> Dict[str, Any]:
    """Serialize one session's fleet report."""
    return {
        "session_id": report.session_id,
        "device": report.device,
        "scenario": report.scenario,
        "taskset": report.taskset,
        "arrival_s": report.arrival_s,
        "start_tick": report.start_tick,
        "end_tick": report.end_tick,
        "warm_started": report.warm_started,
        "n_warm": report.n_warm,
        "warm_source": report.warm_source,
        "costs": [float(c) for c in report.costs],
        "latencies_ms": [float(v) for v in report.latencies_ms],
        "qualities": [float(v) for v in report.qualities],
        "best_cost": report.best_cost,
        "cohort_best_cost": report.cohort_best_cost,
        "converged_at": report.converged_at,
    }


def fleet_result_to_dict(
    result: "FleetResult", metrics: "Optional[MetricsRegistry]" = None
) -> Dict[str, Any]:
    """Serialize a whole fleet run (sessions, aggregates, store/service
    counters). The determinism tests compare two runs through this
    function, so every value here must be reproducible from the seed.

    Pass the run's :class:`~repro.obs.metrics.MetricsRegistry` to embed
    its snapshot under a ``"metrics"`` key (snapshots contain sim-derived
    values only, so they are as reproducible as the rest of the export).
    """
    aggregates = result.aggregates
    exported: Dict[str, Any] = {
        "tick_s": result.tick_s,
        "ticks": result.ticks,
        "sessions": [fleet_report_to_dict(r) for r in result.reports],
        "aggregates": {
            "n_sessions": aggregates.n_sessions,
            "n_evaluations": aggregates.n_evaluations,
            "p50_latency_ms": aggregates.p50_latency_ms,
            "p95_latency_ms": aggregates.p95_latency_ms,
            "p50_quality": aggregates.p50_quality,
            "p95_quality": aggregates.p95_quality,
            "mean_best_cost": aggregates.mean_best_cost,
            "median_converged_warm": aggregates.median_converged_warm,
            "median_converged_cold": aggregates.median_converged_cold,
        },
        "histogram": {str(k): v for k, v in result.histogram.items()},
        "store": result.store_stats,
        "service": result.service_stats,
    }
    if metrics is not None:
        exported["metrics"] = metrics.snapshot()
    return exported


def allocation_from_dict(data: Dict[str, str]) -> Dict[str, Resource]:
    """Rebuild a task → resource map from its exported form."""
    return {task: resource_from_name(name) for task, name in data.items()}


def save_json(payload: Dict[str, Any], path: PathLike) -> None:
    """Write an exported dictionary to ``path`` (pretty-printed)."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read an exported dictionary back."""
    text = Path(path).read_text()
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ExperimentError(f"{path}: expected a JSON object at top level")
    return data

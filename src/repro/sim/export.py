"""JSON export of runs and session traces.

Real deployments archive tuning sessions for offline analysis; these
helpers serialize the library's result objects into plain JSON-compatible
dictionaries (and back-of-envelope loaders for the structures that round
trip). Everything is standard-library ``json`` — no schema dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.obs.metrics import MetricsRegistry

from repro.core.controller import HBORunResult
from repro.core.system import Measurement
from repro.device.resources import Resource, resource_from_name
from repro.errors import ExperimentError
from repro.sim.trace import ActivationRecord, RewardSample, SessionTrace

PathLike = Union[str, Path]


def measurement_to_dict(measurement: Measurement) -> Dict[str, Any]:
    """Serialize one control-period measurement."""
    return {
        "latencies_ms": dict(measurement.latencies_ms),
        "epsilon": measurement.epsilon,
        "quality": measurement.quality,
        "triangle_ratio": measurement.triangle_ratio,
        "allocation": {t: str(r) for t, r in measurement.allocation.items()},
    }


def run_result_to_dict(result: HBORunResult) -> Dict[str, Any]:
    """Serialize a full activation: every iteration plus the selection."""
    if not result.iterations:
        raise ExperimentError("cannot export an empty run result")
    return {
        "best_index": result.best_index,
        "iterations": [
            {
                "z": [float(v) for v in iteration.z],
                "proportions": [float(v) for v in iteration.proportions],
                "triangle_ratio": iteration.triangle_ratio,
                "allocation": {
                    t: str(r) for t, r in iteration.allocation.items()
                },
                "object_ratios": {
                    k: float(v) for k, v in iteration.object_ratios.items()
                },
                "cost": iteration.cost,
                "measurement": measurement_to_dict(iteration.measurement),
            }
            for iteration in result.iterations
        ],
        "final_measurement": (
            measurement_to_dict(result.final_measurement)
            if result.final_measurement is not None
            else None
        ),
    }


def trace_to_dict(trace: SessionTrace) -> Dict[str, Any]:
    """Serialize a monitored-session trace (Fig. 8-style data)."""
    return {
        "samples": [
            {
                "time_s": s.time_s,
                "reward": s.reward,
                "n_objects": s.n_objects,
                "during_activation": s.during_activation,
                "event": s.event,
            }
            for s in trace.samples
        ],
        "activations": [
            {
                "start_time_s": a.start_time_s,
                "end_time_s": a.end_time_s,
                "trigger": a.trigger,
                "best_cost": a.best_cost,
                "best_triangle_ratio": a.best_triangle_ratio,
                "reward_before": a.reward_before,
                "reward_after": a.reward_after,
                "n_iterations": a.n_iterations,
            }
            for a in trace.activations
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> SessionTrace:
    """Rebuild a :class:`SessionTrace` from its exported form."""
    trace = SessionTrace()
    for s in data.get("samples", []):
        trace.add_sample(
            RewardSample(
                time_s=float(s["time_s"]),
                reward=float(s["reward"]),
                n_objects=int(s["n_objects"]),
                during_activation=bool(s.get("during_activation", False)),
                event=s.get("event"),
            )
        )
    for a in data.get("activations", []):
        trace.add_activation(
            ActivationRecord(
                start_time_s=float(a["start_time_s"]),
                end_time_s=float(a["end_time_s"]),
                trigger=str(a["trigger"]),
                best_cost=float(a["best_cost"]),
                best_triangle_ratio=float(a["best_triangle_ratio"]),
                reward_before=float(a["reward_before"]),
                reward_after=float(a["reward_after"]),
                n_iterations=int(a["n_iterations"]),
            )
        )
    return trace


def fleet_report_to_dict(report: Any) -> Dict[str, Any]:
    """Backward-compat wrapper: moved to :mod:`repro.fleet.export`.

    The fleet serializers lived here before RL006 flagged the upward
    ``sim → fleet`` type dependency. The lazy import below is the
    allowlisted compat seam; new code should import from
    ``repro.fleet.export`` directly.
    """
    from repro.fleet.export import fleet_report_to_dict as _impl

    return _impl(report)


def fleet_result_to_dict(
    result: Any, metrics: "Optional[MetricsRegistry]" = None
) -> Dict[str, Any]:
    """Backward-compat wrapper: moved to :mod:`repro.fleet.export`."""
    from repro.fleet.export import fleet_result_to_dict as _impl

    return _impl(result, metrics)


def allocation_from_dict(data: Dict[str, str]) -> Dict[str, Resource]:
    """Rebuild a task → resource map from its exported form."""
    return {task: resource_from_name(name) for task, name in data.items()}


def save_json(payload: Dict[str, Any], path: PathLike) -> None:
    """Write an exported dictionary to ``path`` (pretty-printed)."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read an exported dictionary back."""
    text = Path(path).read_text()
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ExperimentError(f"{path}: expected a JSON object at top level")
    return data

"""The monitoring loop of §IV-E.

:class:`MonitoringEngine` replays a scripted session: it advances the
simulated clock in monitoring intervals (2 s in the paper), fires due
scene events, samples the live reward B_t, and consults the activation
policy. When the policy fires, a full HBO activation runs — consuming
simulated time (one control period per Algorithm 1 iteration) — and the
post-activation reward becomes the policy's new reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.activation import EventBasedPolicy, PeriodicPolicy
from repro.core.controller import HBOController
from repro.errors import ConfigurationError
from repro.obs import runtime as obs
from repro.sim.clock import SimClock
from repro.sim.events import SceneEvent, validate_script
from repro.sim.trace import ActivationRecord, RewardSample, SessionTrace

Policy = Union[EventBasedPolicy, PeriodicPolicy]


@dataclass(frozen=True)
class MonitorReport:
    """Summary of a monitored session."""

    trace: SessionTrace
    n_activations: int
    final_reward: float


class MonitoringEngine:
    """Replays a scene script under an activation policy."""

    def __init__(
        self,
        controller: HBOController,
        policy: Policy,
        monitor_interval_s: float = 2.0,
        control_period_s: float = 2.0,
        monitor_samples: int = 20,
    ) -> None:
        if monitor_interval_s <= 0:
            raise ConfigurationError(
                f"monitor_interval_s must be > 0, got {monitor_interval_s}"
            )
        if control_period_s <= 0:
            raise ConfigurationError(
                f"control_period_s must be > 0, got {control_period_s}"
            )
        if monitor_samples < 1:
            raise ConfigurationError(
                f"monitor_samples must be >= 1, got {monitor_samples}"
            )
        self.controller = controller
        self.policy = policy
        self.monitor_interval_s = float(monitor_interval_s)
        self.control_period_s = float(control_period_s)
        self.monitor_samples = int(monitor_samples)
        self.clock = SimClock()

    # ---------------------------------------------------------------- run

    def run(
        self, events: Sequence[SceneEvent], duration_s: float
    ) -> MonitorReport:
        """Replay ``events`` for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration_s must be > 0, got {duration_s}")
        script = list(validate_script(events))
        trace = SessionTrace()
        system = self.controller.system
        w = self.controller.config.w
        next_event = 0

        while self.clock.now_s <= duration_s:
            now = self.clock.now_s
            # Fire all events due by now.
            fired_descriptions = []
            while next_event < len(script) and script[next_event].time_s <= now:
                fired_descriptions.append(script[next_event].apply(system.scene))
                next_event += 1
            if fired_descriptions:
                system.refresh_load()

            with obs.span("sim.monitor", category="sim", n_objects=len(system.scene)):
                reward = system.measure_reward(w, samples=self.monitor_samples)
            obs.counter("engine_monitor_steps").inc()
            obs.gauge("engine_reward").set(reward)
            event_note = "; ".join(fired_descriptions) if fired_descriptions else None

            activate = False
            trigger = ""
            if len(system.scene) > 0 and self.policy.should_activate(reward):
                activate = True
                if self.policy.reference is None and not isinstance(
                    self.policy, PeriodicPolicy
                ):
                    trigger = "first object placement"
                elif event_note:
                    trigger = event_note
                else:
                    trigger = "reward drift" if isinstance(
                        self.policy, EventBasedPolicy
                    ) else "period elapsed"

            trace.add_sample(
                RewardSample(
                    time_s=now,
                    reward=reward,
                    n_objects=len(system.scene),
                    during_activation=False,
                    event=event_note,
                )
            )

            if activate:
                self._run_activation(trace, trigger, reward)
            else:
                if isinstance(self.policy, PeriodicPolicy):
                    self.policy.step()
                self.clock.advance(self.monitor_interval_s)

        final_reward = system.measure_reward(w, samples=self.monitor_samples)
        return MonitorReport(
            trace=trace, n_activations=trace.n_activations, final_reward=final_reward
        )

    # ------------------------------------------------------------ internals

    def _run_activation(
        self, trace: SessionTrace, trigger: str, reward_before: float
    ) -> None:
        start = self.clock.now_s
        with obs.span("sim.activation", category="sim", trigger=trigger) as span:
            result = self.controller.activate()
            # Each Algorithm 1 iteration spans one control period of sim time.
            for iteration in result.iterations:
                self.clock.advance(self.control_period_s)
                trace.add_sample(
                    RewardSample(
                        time_s=self.clock.now_s,
                        reward=-iteration.cost,
                        n_objects=len(self.controller.system.scene),
                        during_activation=True,
                    )
                )
            span.set(n_iterations=len(result.iterations), best_cost=result.best.cost)
        obs.counter("engine_activations").inc()
        reward_after = (
            result.final_measurement.reward(self.controller.config.w)
            if result.final_measurement is not None
            else -result.best.cost
        )
        self.policy.record_reference(reward_after)
        trace.add_activation(
            ActivationRecord(
                start_time_s=start,
                end_time_s=self.clock.now_s,
                trigger=trigger,
                best_cost=result.best.cost,
                best_triangle_ratio=result.best.triangle_ratio,
                reward_before=reward_before,
                reward_after=reward_after,
                n_iterations=len(result.iterations),
            )
        )
        self.clock.advance(self.monitor_interval_s)

"""Simulation engine: scripted MAR sessions over a simulated clock.

- :mod:`repro.sim.clock` — the discrete simulation clock.
- :mod:`repro.sim.events` — scene events (object placement/removal, user
  movement) with firing times.
- :mod:`repro.sim.trace` — telemetry recording (reward samples,
  activations, allocations over time).
- :mod:`repro.sim.engine` — the monitoring loop of §IV-E: advance time,
  fire events, sample the reward, consult the activation policy, run HBO
  activations.
- :mod:`repro.sim.scenarios` — builders for the paper's experimental
  set-ups (SC1/SC2 × CF1/CF2, the Fig. 8 placement script, the Fig. 2
  motivation runs).
"""

from repro.sim.clock import SimClock
from repro.sim.engine import MonitoringEngine, MonitorReport
from repro.sim.events import DistanceChange, ObjectPlacement, ObjectRemoval, SceneEvent
from repro.sim.scenarios import (
    ScenarioName,
    build_system,
    fig8_event_script,
    scenario_catalog,
    scenario_taskset,
)
from repro.sim.trace import ActivationRecord, RewardSample, SessionTrace

__all__ = [
    "ActivationRecord",
    "DistanceChange",
    "MonitorReport",
    "MonitoringEngine",
    "ObjectPlacement",
    "ObjectRemoval",
    "RewardSample",
    "ScenarioName",
    "SceneEvent",
    "SessionTrace",
    "SimClock",
    "build_system",
    "fig8_event_script",
    "scenario_catalog",
    "scenario_taskset",
]

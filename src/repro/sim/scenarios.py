"""Builders for the paper's experimental set-ups.

Combines the Table II pieces into ready-to-run systems:

- ``build_system("SC1", "CF1")`` — a MAR system with the SC1 objects
  placed deterministically around the user and the CF1 taskset running.
- ``fig8_event_script()`` — the §V-D activation experiment: 10 objects
  placed between t = 0 and t = 255 s (the 10th a heavy ~150k-triangle
  asset), then the user stepping away from the objects around t = 320 s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ar.objects import (
    VirtualObject,
    catalog_sc1,
    catalog_sc2,
    expand_instances,
    object_by_name,
)
from repro.ar.renderer import RenderLoadModel
from repro.ar.scene import Scene
from repro.core.system import MARSystem
from repro.device.executor import DeviceSimulator
from repro.device.profiles import GALAXY_A54, GALAXY_S22, PIXEL6A, PIXEL7
from repro.device.soc import (
    SoCSpec,
    galaxy_a54_soc,
    galaxy_s22_soc,
    pixel6a_soc,
    pixel7_soc,
)
from repro.device.thermal import ThermalModel
from repro.edge.link import WirelessLink
from repro.edge.runtime import EdgeRuntime, extend_taskset
from repro.errors import ConfigurationError
from repro.models.tasks import TaskSet, taskset_cf1, taskset_cf2
from repro.rng import SeedLike, derive_seed, make_rng
from repro.sim.events import DistanceChange, ObjectPlacement, SceneEvent, validate_script

ScenarioName = Literal["SC1", "SC2"]
TasksetName = Literal["CF1", "CF2"]

_SOC_FACTORIES = {
    PIXEL7: pixel7_soc,
    GALAXY_S22: galaxy_s22_soc,
    PIXEL6A: pixel6a_soc,
    GALAXY_A54: galaxy_a54_soc,
}


def scenario_catalog(name: str) -> List[Tuple[VirtualObject, int]]:
    """Table II object catalog for ``"SC1"`` or ``"SC2"``."""
    if name == "SC1":
        return catalog_sc1()
    if name == "SC2":
        return catalog_sc2()
    raise ConfigurationError(f"unknown scenario {name!r}; expected 'SC1' or 'SC2'")


def scenario_taskset(name: str, device: str = PIXEL7) -> TaskSet:
    """Table II taskset for ``"CF1"`` or ``"CF2"``."""
    if name == "CF1":
        return taskset_cf1(device)
    if name == "CF2":
        return taskset_cf2(device)
    raise ConfigurationError(f"unknown taskset {name!r}; expected 'CF1' or 'CF2'")


def place_catalog(
    scene: Scene,
    catalog: List[Tuple[VirtualObject, int]],
    seed: SeedLike = 7,
    center: Tuple[float, float, float] = (0.0, 0.0, 1.3),
    spread_m: float = 1.2,
) -> None:
    """Scatter every catalog instance around ``center`` deterministically.

    Positions are uniform in a cube of half-width ``spread_m`` around the
    center, which puts objects at user distances of roughly 0.5–2.5 m —
    the range the paper's screenshots show.
    """
    rng = make_rng(seed)
    for instance_id, obj in expand_instances(catalog):
        offset = rng.uniform(-spread_m, spread_m, 3)
        scene.add(instance_id, obj, position=np.asarray(center) + offset)


def build_system(
    scenario: str,
    taskset: str,
    device: str = PIXEL7,
    seed: SeedLike = 7,
    noise_sigma: float = 0.04,
    samples_per_period: int = 20,
    soc: Optional[SoCSpec] = None,
    place_objects: bool = True,
    edge: Optional[EdgeRuntime] = None,
    thermal: Optional[ThermalModel] = None,
) -> MARSystem:
    """Assemble a ready-to-run MAR system for a paper scenario.

    ``seed`` drives both object placement and device measurement noise
    (through decorrelated child streams), so a single integer reproduces
    the whole experiment. Passing an :class:`~repro.edge.runtime.
    EdgeRuntime` extends every CPU-capable task with an ``EDGE`` latency
    row and attaches the runtime to the device (N becomes 4); ``None``
    (the default) leaves the build byte-identical to the pre-edge path.
    ``thermal`` attaches a :class:`~repro.device.thermal.ThermalModel` to
    the device (a beyond-the-paper extension used by the scenario
    engine's hot-device episodes); ``None`` keeps the device athermal and
    the build unchanged.
    """
    if device not in _SOC_FACTORIES:
        raise ConfigurationError(
            f"unknown device {device!r}; expected one of {sorted(_SOC_FACTORIES)}"
        )
    scene = Scene()
    if place_objects:
        place_catalog(
            scene, scenario_catalog(scenario), seed=derive_seed(seed, "placement")
        )
    else:
        scenario_catalog(scenario)  # validate the name even when deferred
    device_sim = DeviceSimulator(
        soc if soc is not None else _SOC_FACTORIES[device](),
        noise_sigma=noise_sigma,
        thermal=thermal,
        seed=derive_seed(seed, "device-noise"),
        edge=edge,
    )
    taskset_obj = scenario_taskset(taskset, device)
    if edge is not None:
        taskset_obj = extend_taskset(taskset_obj, edge.config)
    return MARSystem(
        taskset=taskset_obj,
        device=device_sim,
        scene=scene,
        render_model=RenderLoadModel(),
        samples_per_period=samples_per_period,
    )


#: The network-drift scenario: (time_s, bandwidth_scale) breakpoints.
#: The link starts nominal, collapses to a quarter of its bandwidth
#: mid-run (a user walking behind an obstruction), then partially
#: recovers — the collapse inflates offloaded tasks' transfer time and
#: should push a re-optimization back onto the device.
NETWORK_DRIFT_SCHEDULE: Tuple[Tuple[float, float], ...] = (
    (0.0, 1.0),
    (30.0, 0.25),
    (60.0, 0.6),
)


def network_drift_scale(
    now_s: float,
    schedule: Tuple[Tuple[float, float], ...] = NETWORK_DRIFT_SCHEDULE,
) -> float:
    """The scheduled bandwidth scale in force at ``now_s`` (step-wise
    constant; times before the first breakpoint use its scale)."""
    if not schedule:
        raise ConfigurationError("drift schedule must have >= 1 breakpoint")
    scale = schedule[0][1]
    for time_s, value in schedule:
        if now_s >= time_s:
            scale = value
    return scale


#: A per-server drift plan: node name → (time_s, bandwidth_scale)
#: breakpoints. Each server's cell degrades on its own schedule.
DriftScheduleMap = Mapping[str, Tuple[Tuple[float, float], ...]]


def apply_network_drift(
    link: WirelessLink,
    now_s: float,
    schedule: Union[
        Tuple[Tuple[float, float], ...], DriftScheduleMap
    ] = NETWORK_DRIFT_SCHEDULE,
    server: Optional[str] = None,
) -> float:
    """Force ``link`` onto the scheduled bandwidth scale for ``now_s``
    (overriding random drift) and return the applied scale.

    ``schedule`` is either a single breakpoint tuple (the original
    single-link form — every pre-topology call site is byte-identical)
    or a per-server map of them, in which case ``server`` selects the
    entry; a server absent from the map keeps a nominal scale of 1.0
    (its cell is simply not part of the episode).
    """
    if isinstance(schedule, Mapping):
        if server is None:
            raise ConfigurationError(
                "a per-server drift map needs the server= name to select "
                f"a schedule from {sorted(schedule)}"
            )
        if server not in schedule:
            scale = 1.0
            link.set_bandwidth_scale(scale)
            return scale
        scale = network_drift_scale(now_s, tuple(schedule[server]))
    else:
        scale = network_drift_scale(now_s, schedule)
    link.set_bandwidth_scale(scale)
    return scale


def staggered_drift_schedules(
    node_names: Sequence[str], stagger_s: float = 10.0
) -> Dict[str, Tuple[Tuple[float, float], ...]]:
    """One :data:`NETWORK_DRIFT_SCHEDULE`-shaped plan per server, each
    node's collapse arriving ``stagger_s`` later than the previous one.

    Pure function of its inputs, so fleets built from it stay
    deterministic. Staggering matters for migration tests: while node
    *i* is collapsed, node *i+1* is still nominal, so a price-aware
    migration has somewhere strictly cheaper to go.
    """
    schedules: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    for i, name in enumerate(node_names):
        shift = stagger_s * i
        schedules[name] = tuple(
            (time_s + shift if time_s > 0 else time_s, scale)
            for time_s, scale in NETWORK_DRIFT_SCHEDULE
        )
    return schedules


@dataclass(frozen=True)
class ServerOutage:
    """One edge server dropping out of the topology for a time window.

    While ``start_s <= now < end_s`` the node admits nobody and the
    fleet scheduler pushes its tenants back onto their devices (graceful
    fallback, not a crash); after ``end_s`` the node serves again.
    """

    node: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if not self.node:
            raise ConfigurationError("outage node name must be non-empty")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ConfigurationError(
                f"outage window must satisfy 0 <= start < end, got "
                f"[{self.start_s}, {self.end_s})"
            )

    def covers(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s


def fig8_event_script(seed: SeedLike = 11) -> Tuple[Tuple[SceneEvent, ...], float]:
    """The §V-D activation experiment script.

    Returns (events, session duration in seconds): ten object placements
    from t = 0 to t = 255 s — mostly light objects, with the 10th a heavy
    ~150k-triangle asset (the paper calls out that only the 9th and 10th
    placements trigger re-optimization) — followed by the user stepping
    back from the objects around t = 320 s.
    """
    rng = make_rng(seed)
    light = [obj for obj, _count in catalog_sc2()]
    heavy_mid = object_by_name("Cocacola")  # ~94k triangles (9th object)
    heavy_final = object_by_name("plane")  # ~147k triangles (10th object)

    events: List[SceneEvent] = []
    times = np.linspace(0.0, 255.0, 10)
    for i, t in enumerate(times):
        if i == 8:
            obj = heavy_mid
        elif i == 9:
            obj = heavy_final
        else:
            obj = light[i % len(light)]
        position = tuple(rng.uniform(-1.0, 1.0, 3) + np.asarray((0.0, 0.0, 1.2)))
        events.append(
            ObjectPlacement(
                time_s=float(t),
                instance_id=f"obj_{i + 1}_{obj.name}",
                obj=obj,
                position=position,
            )
        )
    # User steps away: distances grow, quality improves for free, and the
    # event policy reacts to the reward *increase*.
    events.append(DistanceChange(time_s=320.0, user_position=(0.0, 0.0, -1.5)))
    return validate_script(events), 400.0

"""The paper's four comparison baselines (§V-A).

- :mod:`repro.baselines.smq` — Static Match Quality: affinity-static
  allocation, HBO's triangle ratio.
- :mod:`repro.baselines.sml` — Static Match Latency: affinity-static
  allocation, triangles reduced until latency matches HBO's.
- :mod:`repro.baselines.bnt` — Bayesian No Triangle: HBO's allocation
  machinery, latency-only cost, full-quality objects.
- :mod:`repro.baselines.alln` — All NNAPI: Android's NNAPI delegate for
  every task, full-quality objects.
- :mod:`repro.baselines.greedy_dynamic` — an extra baseline beyond the
  paper: measurement-driven greedy relocation at full quality (how
  reactive schedulers behave).
"""

from repro.baselines.alln import AllNNAPIBaseline
from repro.baselines.base import Baseline, BaselineOutcome
from repro.baselines.bnt import BayesianNoTriangleBaseline
from repro.baselines.greedy_dynamic import GreedyDynamicBaseline
from repro.baselines.sml import StaticMatchLatencyBaseline
from repro.baselines.smq import StaticMatchQualityBaseline

__all__ = [
    "AllNNAPIBaseline",
    "Baseline",
    "BaselineOutcome",
    "BayesianNoTriangleBaseline",
    "GreedyDynamicBaseline",
    "StaticMatchLatencyBaseline",
    "StaticMatchQualityBaseline",
]

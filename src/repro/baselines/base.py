"""Common baseline interface.

Every baseline is a policy that, given a running
:class:`~repro.core.system.MARSystem`, settles on a configuration
(per-task allocation + triangle ratio) and reports the measured
performance as a :class:`BaselineOutcome` — the same tuple HBO's best
iteration yields, so the Fig. 5 comparison treats everything uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping

from repro.core.system import MARSystem, Measurement
from repro.device.resources import Resource


@dataclass(frozen=True)
class BaselineOutcome:
    """A baseline's settled configuration and its measured performance."""

    name: str
    allocation: Mapping[str, Resource]
    triangle_ratio: float
    measurement: Measurement

    @property
    def epsilon(self) -> float:
        return self.measurement.epsilon

    @property
    def quality(self) -> float:
        return self.measurement.quality

    @property
    def mean_latency_ms(self) -> float:
        return self.measurement.mean_latency_ms


class Baseline(ABC):
    """A comparison policy."""

    name: str = "baseline"

    @abstractmethod
    def run(self, system: MARSystem) -> BaselineOutcome:
        """Configure ``system`` and measure the settled performance."""

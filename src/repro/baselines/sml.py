"""Static Match Latency (SML), §V-A.

Keeps SMQ's static affinity allocation but gradually reduces the total
triangle count until the measured average latency comes down to HBO's.
Quantifies how much quality a static allocator must sacrifice to buy the
latency HBO gets by *jointly* reallocating tasks — the paper reports HBO
achieving 14.5% better quality at comparable latency (§V-C) and SML
needing ratio 0.2 where HBO keeps 0.52 in the user study (§V-E).

When the target latency is unreachable (a static allocation's latency is
floored by GPU/NPU contention that triangles do not control), SML settles
at the *knee* of its achievable latency curve: the largest ratio whose
latency is within ``knee_tolerance`` of the best achievable — decimating
beyond that point sacrifices quality for nothing.

The scan itself is still sequential (each step's measurement decides
whether to keep reducing, and the noise stream must be drawn in scan
order), but the steady-state latencies of the *whole* candidate grid are
precomputed through one multi-row :func:`repro.backend.solve` call and
injected into each measurement — the per-step work is then just the
noise draw.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.backend.plan import EvalPlan
from repro.backend.solve import solve
from repro.baselines.base import Baseline, BaselineOutcome
from repro.core.system import MARSystem, Measurement
from repro.device.resources import Resource
from repro.errors import ConfigurationError


class StaticMatchLatencyBaseline(Baseline):
    """Affinity-static allocation, triangles reduced to match a target ε."""

    name = "SML"

    def __init__(
        self,
        target_epsilon: float,
        step: float = 0.02,
        min_ratio: float = 0.05,
        tolerance: float = 0.02,
        knee_tolerance: float = 0.03,
    ) -> None:
        if step <= 0 or step >= 1:
            raise ConfigurationError(f"step must be in (0, 1), got {step}")
        if not 0.0 < min_ratio <= 1.0:
            raise ConfigurationError(
                f"min_ratio must be in (0, 1], got {min_ratio}"
            )
        if knee_tolerance < 0:
            raise ConfigurationError(
                f"knee_tolerance must be >= 0, got {knee_tolerance}"
            )
        self.target_epsilon = float(target_epsilon)
        self.step = float(step)
        self.min_ratio = float(min_ratio)
        self.tolerance = float(tolerance)
        self.knee_tolerance = float(knee_tolerance)

    def _ratio_grid(self) -> List[float]:
        """The scan's ratio sequence, largest first (same float decrement
        sequence the scan loop walks)."""
        grid: List[float] = []
        ratio = 1.0
        while ratio >= self.min_ratio - 1e-9:
            grid.append(ratio)
            ratio -= self.step
        return grid

    def _steady_by_step(
        self,
        system: MARSystem,
        allocation: Dict[str, Resource],
        grid: List[float],
    ) -> List[Optional[Dict[str, float]]]:
        """Steady-state latencies for every grid step, one backend solve.

        Applying a configuration is deterministic and RNG-free, so the
        grid can be pre-applied to snapshot each step's (placements,
        load) row; the scan re-applies the steps it actually visits.
        Thermal devices resample their drifting steady state locally.
        """
        if system.device.thermal is not None:
            return [None] * len(grid)
        rows = []
        for ratio in grid:
            system.apply(allocation, ratio)
            device = system.device
            rows.append((device.soc, device.placements(), device.load))
        plan = EvalPlan.from_placement_rows(rows)
        result = solve(plan, exact=True)
        return [
            plan.latency_map(result.latency_ms, i) for i in range(len(grid))
        ]

    def run(self, system: MARSystem) -> BaselineOutcome:
        allocation = system.taskset.affinity_allocation()
        grid = self._ratio_grid()
        steady_by_step = self._steady_by_step(system, allocation, grid)

        # Gradual reduction (the paper's description), recording the
        # whole achievable (ratio, ε) curve.
        scan: List[Tuple[float, Measurement]] = []
        for i, ratio in enumerate(grid):
            system.apply(allocation, ratio)
            measurement = system.measure(steady_latencies=steady_by_step[i])
            scan.append((ratio, measurement))
            if measurement.epsilon <= self.target_epsilon + self.tolerance:
                break  # target reached: stop at the largest such ratio

        chosen_ratio, chosen = scan[-1]
        if chosen.epsilon > self.target_epsilon + self.tolerance:
            # Target unreachable: settle at the knee of the curve.
            best_epsilon = min(m.epsilon for _r, m in scan)
            for r, m in scan:  # scan is ordered from largest ratio down
                if m.epsilon <= best_epsilon + self.knee_tolerance:
                    chosen_ratio, chosen = r, m
                    break
            step_index = grid.index(chosen_ratio)
            system.apply(allocation, chosen_ratio)
            chosen = system.measure(steady_latencies=steady_by_step[step_index])

        return BaselineOutcome(
            name=self.name,
            allocation=allocation,
            triangle_ratio=chosen_ratio,
            measurement=chosen,
        )

"""Static Match Latency (SML), §V-A.

Keeps SMQ's static affinity allocation but gradually reduces the total
triangle count until the measured average latency comes down to HBO's.
Quantifies how much quality a static allocator must sacrifice to buy the
latency HBO gets by *jointly* reallocating tasks — the paper reports HBO
achieving 14.5% better quality at comparable latency (§V-C) and SML
needing ratio 0.2 where HBO keeps 0.52 in the user study (§V-E).

When the target latency is unreachable (a static allocation's latency is
floored by GPU/NPU contention that triangles do not control), SML settles
at the *knee* of its achievable latency curve: the largest ratio whose
latency is within ``knee_tolerance`` of the best achievable — decimating
beyond that point sacrifices quality for nothing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.base import Baseline, BaselineOutcome
from repro.core.system import MARSystem, Measurement
from repro.errors import ConfigurationError


class StaticMatchLatencyBaseline(Baseline):
    """Affinity-static allocation, triangles reduced to match a target ε."""

    name = "SML"

    def __init__(
        self,
        target_epsilon: float,
        step: float = 0.02,
        min_ratio: float = 0.05,
        tolerance: float = 0.02,
        knee_tolerance: float = 0.03,
    ) -> None:
        if step <= 0 or step >= 1:
            raise ConfigurationError(f"step must be in (0, 1), got {step}")
        if not 0.0 < min_ratio <= 1.0:
            raise ConfigurationError(
                f"min_ratio must be in (0, 1], got {min_ratio}"
            )
        if knee_tolerance < 0:
            raise ConfigurationError(
                f"knee_tolerance must be >= 0, got {knee_tolerance}"
            )
        self.target_epsilon = float(target_epsilon)
        self.step = float(step)
        self.min_ratio = float(min_ratio)
        self.tolerance = float(tolerance)
        self.knee_tolerance = float(knee_tolerance)

    def run(self, system: MARSystem) -> BaselineOutcome:
        allocation = system.taskset.affinity_allocation()

        # Gradual reduction (the paper's description), recording the
        # whole achievable (ratio, ε) curve.
        scan: List[Tuple[float, Measurement]] = []
        ratio = 1.0
        while ratio >= self.min_ratio - 1e-9:
            system.apply(allocation, ratio)
            measurement = system.measure()
            scan.append((ratio, measurement))
            if measurement.epsilon <= self.target_epsilon + self.tolerance:
                break  # target reached: stop at the largest such ratio
            ratio -= self.step

        chosen_ratio, chosen = scan[-1]
        if chosen.epsilon > self.target_epsilon + self.tolerance:
            # Target unreachable: settle at the knee of the curve.
            best_epsilon = min(m.epsilon for _r, m in scan)
            for r, m in scan:  # scan is ordered from largest ratio down
                if m.epsilon <= best_epsilon + self.knee_tolerance:
                    chosen_ratio, chosen = r, m
                    break
            system.apply(allocation, chosen_ratio)
            chosen = system.measure()

        return BaselineOutcome(
            name=self.name,
            allocation=allocation,
            triangle_ratio=chosen_ratio,
            measurement=chosen,
        )

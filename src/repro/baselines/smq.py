"""Static Match Quality (SMQ), §V-A.

Uses the same triangle-count distribution as HBO (the TD heuristic at
HBO's chosen total ratio) so the average quality matches, but allocates
each AI task statically to the resource with the lowest *isolation*
latency (Table I affinity). Quantifies what HBO's dynamic allocation buys
on the latency side.
"""

from __future__ import annotations

from repro.baselines.base import Baseline, BaselineOutcome
from repro.core.system import MARSystem
from repro.errors import ConfigurationError


class StaticMatchQualityBaseline(Baseline):
    """Affinity-static allocation at HBO's triangle ratio."""

    name = "SMQ"

    def __init__(self, match_triangle_ratio: float) -> None:
        if not 0.0 < match_triangle_ratio <= 1.0:
            raise ConfigurationError(
                f"match_triangle_ratio must be in (0, 1], got {match_triangle_ratio}"
            )
        self.match_triangle_ratio = float(match_triangle_ratio)

    def run(self, system: MARSystem) -> BaselineOutcome:
        allocation = system.taskset.affinity_allocation()
        system.apply(allocation, self.match_triangle_ratio)
        measurement = system.measure()
        return BaselineOutcome(
            name=self.name,
            allocation=allocation,
            triangle_ratio=self.match_triangle_ratio,
            measurement=measurement,
        )

"""Greedy dynamic scheduler baseline (beyond the paper's four).

The paper's §II argues that operator-level schedulers (BAND et al.) are
orthogonal to HBO and that reactive allocation alone cannot match the
joint optimization. This baseline makes that argument testable without a
full operator-level substrate: a *measurement-driven greedy local search*
over per-task allocations — repeatedly move the single task whose
relocation most improves the measured average latency, at full object
quality — which is how reactive schedulers behave in steady state.

Two properties distinguish it from BNT: it has no surrogate model (every
probe is a real measurement, so it spends many more control periods for
the same search depth), and like BNT it cannot trade quality, so it
inherits the full rendering interference.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backend.plan import EvalPlan
from repro.backend.solve import solve
from repro.baselines.base import Baseline, BaselineOutcome
from repro.core.system import MARSystem
from repro.device.resources import ALL_RESOURCES, Resource
from repro.errors import ConfigurationError


class GreedyDynamicBaseline(Baseline):
    """Measurement-driven greedy relocation at full quality.

    Each search round enumerates its single-task relocations up front and
    prices all their steady states through one multi-row
    :func:`repro.backend.solve`; the probes then only draw measurement
    noise, in the same order a fully sequential search would.
    """

    name = "GreedyDyn"

    def __init__(self, max_rounds: int = 4, samples_per_probe: int = 5) -> None:
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        if samples_per_probe < 1:
            raise ConfigurationError(
                f"samples_per_probe must be >= 1, got {samples_per_probe}"
            )
        self.max_rounds = int(max_rounds)
        self.samples_per_probe = int(samples_per_probe)
        #: Control periods spent probing (the baseline's overhead metric).
        self.probes = 0

    def _probe(
        self,
        system: MARSystem,
        allocation: Dict[str, Resource],
        steady: Optional[Dict[str, float]] = None,
    ) -> float:
        system.apply_uniform_ratio(allocation, 1.0)
        self.probes += 1
        return system.measure(
            samples=self.samples_per_probe, steady_latencies=steady
        ).epsilon

    def _steady_rows(
        self, system: MARSystem, candidates: List[Dict[str, Resource]]
    ) -> List[Optional[Dict[str, float]]]:
        """Steady-state latencies for a round's candidates, one solve.

        Applying an allocation is deterministic and RNG-free, so each
        candidate is pre-applied to snapshot its (placements, load) row;
        the probe loop re-applies the one it is measuring. Thermal
        devices resample locally (their steady state drifts per probe).
        """
        if system.device.thermal is not None or not candidates:
            return [None] * len(candidates)
        rows = []
        for candidate in candidates:
            system.apply_uniform_ratio(candidate, 1.0)
            device = system.device
            rows.append((device.soc, device.placements(), device.load))
        plan = EvalPlan.from_placement_rows(rows)
        result = solve(plan, exact=True)
        return [
            plan.latency_map(result.latency_ms, i)
            for i in range(len(candidates))
        ]

    def run(self, system: MARSystem) -> BaselineOutcome:
        self.probes = 0
        allocation = dict(system.taskset.affinity_allocation())
        best_epsilon = self._probe(system, allocation)

        for _round in range(self.max_rounds):
            # The candidate list depends only on the round's starting
            # allocation, so it can be enumerated (and priced) up front.
            candidates: List[Dict[str, Resource]] = []
            for task in system.taskset:
                current = allocation[task.task_id]
                for resource in ALL_RESOURCES:
                    if resource is current or not task.profile.supports(resource):
                        continue
                    candidate = dict(allocation)
                    candidate[task.task_id] = resource
                    candidates.append(candidate)
            steadies = self._steady_rows(system, candidates)
            best_move: Optional[Dict[str, Resource]] = None
            move_epsilon = best_epsilon
            # Probe every single-task relocation; keep the best.
            for candidate, steady in zip(candidates, steadies):
                epsilon = self._probe(system, candidate, steady)
                if epsilon < move_epsilon - 1e-6:
                    best_move, move_epsilon = candidate, epsilon
            if best_move is None:
                break  # local optimum
            allocation, best_epsilon = best_move, move_epsilon

        system.apply_uniform_ratio(allocation, 1.0)
        measurement = system.measure()
        return BaselineOutcome(
            name=self.name,
            allocation=allocation,
            triangle_ratio=1.0,
            measurement=measurement,
        )

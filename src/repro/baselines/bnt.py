"""Bayesian No Triangle (BNT), §V-A.

Same heuristic AI-task relocation machinery as HBO, but the triangle
ratio is not regulated (objects stay at full quality) and the BO cost
incorporates only the average latency. Shows that reallocating AI tasks
alone — without trading off object quality — cannot reach HBO's latency
under heavy rendering.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Baseline, BaselineOutcome
from repro.core.controller import HBOConfig, HBOController
from repro.core.system import MARSystem
from repro.rng import SeedLike


class BayesianNoTriangleBaseline(Baseline):
    """HBO's allocator with a latency-only cost and x pinned to 1."""

    name = "BNT"

    def __init__(
        self, config: Optional[HBOConfig] = None, seed: SeedLike = None
    ) -> None:
        base = config if config is not None else HBOConfig()
        # Same exploration budget as HBO, but the latency-only cost.
        self.config = HBOConfig(
            w=base.w,
            n_initial=base.n_initial,
            n_iterations=base.n_iterations,
            r_min=base.r_min,
            kernel_length_scale=base.kernel_length_scale,
            noise=base.noise,
            latency_only=True,
        )
        self.seed = seed

    def run(self, system: MARSystem) -> BaselineOutcome:
        controller = HBOController(system, self.config, seed=self.seed)
        result = controller.activate()
        measurement = (
            result.final_measurement
            if result.final_measurement is not None
            else result.best.measurement
        )
        return BaselineOutcome(
            name=self.name,
            allocation=result.best.allocation,
            triangle_ratio=1.0,
            measurement=measurement,
        )

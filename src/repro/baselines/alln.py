"""All NNAPI (AllN), §V-A.

The state-of-the-art Android path: hand every AI task to the NNAPI
delegate, which splits each model's operations across CPU/GPU/NPU itself,
and render virtual objects at full quality. Tasks whose model has no
NNAPI path (Table I "NA") fall back to their best supported resource —
that is what the Android runtime does when a delegate rejects a graph.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import Baseline, BaselineOutcome
from repro.core.system import MARSystem
from repro.device.resources import Resource


class AllNNAPIBaseline(Baseline):
    """Every task on the NNAPI delegate, objects at full quality."""

    name = "AllN"

    def run(self, system: MARSystem) -> BaselineOutcome:
        allocation: Dict[str, Resource] = {}
        for task in system.taskset:
            if task.profile.supports(Resource.NNAPI):
                allocation[task.task_id] = Resource.NNAPI
            else:
                allocation[task.task_id] = task.affinity
        # AllN does not manipulate quality: uniform full ratio, no TD.
        system.apply_uniform_ratio(allocation, 1.0)
        measurement = system.measure()
        return BaselineOutcome(
            name=self.name,
            allocation=allocation,
            triangle_ratio=1.0,
            measurement=measurement,
        )

"""Unit aliases and conversions for temporal quantities.

The repo-wide convention (enforced by reprolint rule RL004) is that every
temporal value carries its unit, either in the name (``latency_ms``,
``period_s``) or in the annotation via these aliases:

- :data:`Ms` — milliseconds. Per-task AI latencies, frame times, NNAPI
  coordination costs (the paper's Table I and Eq. 4 operate in ms).
- :data:`Seconds` — seconds. Simulated session time, control periods
  (Fig. 2 / Fig. 8 axes are seconds).

The aliases are plain ``float`` at runtime — they exist for reader and
type-checker consumption, not dimensional analysis — so no call-site
changes when a signature migrates to them. Convert explicitly at the
boundary with :func:`ms_to_s` / :func:`s_to_ms` so the factor of 1000 is
greppable instead of inlined.
"""

from __future__ import annotations

#: Milliseconds. Annotation alias; plain ``float`` at runtime.
Ms = float
#: Seconds. Annotation alias; plain ``float`` at runtime.
Seconds = float

#: Milliseconds per second — the only place this constant should live.
MS_PER_S: float = 1000.0


def ms_to_s(value_ms: Ms) -> Seconds:
    """Convert milliseconds to seconds."""
    return value_ms / MS_PER_S


def s_to_ms(value_s: Seconds) -> Ms:
    """Convert seconds to milliseconds."""
    return value_s * MS_PER_S


__all__ = ["MS_PER_S", "Ms", "Seconds", "ms_to_s", "s_to_ms"]

"""Fig. 6: in-depth analysis of one HBO execution (SC1-CF1).

Four panels:

- (a) Euclidean distance between consecutive BO configurations —
  exploration (large) vs exploitation (small);
- (b) best-cost-so-far over iterations;
- (c) average quality and normalized latency per iteration, with the
  selected (lowest-cost) iteration marked;
- (d) per-task latency (ms) under HBO's best configuration vs SMQ at the
  same triangle ratio — the paper reports HBO improving the NNAPI-resident
  tasks by 103% best-case / 23.8% worst-case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.baselines import StaticMatchQualityBaseline
from repro.core.controller import HBOConfig
from repro.device.profiles import PIXEL7
from repro.experiments.common import DEFAULT_SEED, HBORun, run_hbo
from repro.experiments.report import format_series, format_table
from repro.rng import derive_seed
from repro.sim.scenarios import build_system

SCENARIO, TASKSET = "SC1", "CF1"


@dataclass(frozen=True)
class Fig6Result:
    hbo: HBORun
    smq_latencies_ms: Dict[str, float]

    @property
    def consecutive_distances(self) -> np.ndarray:
        return self.hbo.result.consecutive_distances()

    @property
    def best_cost_trajectory(self) -> np.ndarray:
        return self.hbo.result.best_cost_trajectory()

    @property
    def qualities(self) -> np.ndarray:
        return np.asarray(
            [it.measurement.quality for it in self.hbo.result.iterations]
        )

    @property
    def epsilons(self) -> np.ndarray:
        return np.asarray(
            [it.measurement.epsilon for it in self.hbo.result.iterations]
        )

    @property
    def best_index(self) -> int:
        return self.hbo.result.best_index

    def hbo_latencies_ms(self) -> Dict[str, float]:
        return dict(self.hbo.result.best.measurement.latencies_ms)

    def per_task_improvement(self) -> Dict[str, float]:
        """SMQ latency over HBO latency − 1, per task (Fig. 6d's gaps)."""
        hbo_lat = self.hbo_latencies_ms()
        return {
            tid: self.smq_latencies_ms[tid] / hbo_lat[tid] - 1.0
            for tid in hbo_lat
        }


def run_fig6(seed: int = DEFAULT_SEED, config: HBOConfig = None) -> Fig6Result:  # type: ignore[assignment]
    cfg = config if config is not None else HBOConfig()
    hbo = run_hbo(SCENARIO, TASKSET, seed=seed, config=cfg)
    smq_system = build_system(
        SCENARIO, TASKSET, device=PIXEL7, seed=derive_seed(seed, SCENARIO, TASKSET)
    )
    smq = StaticMatchQualityBaseline(match_triangle_ratio=hbo.best_triangle_ratio)
    outcome = smq.run(smq_system)
    return Fig6Result(hbo=hbo, smq_latencies_ms=dict(outcome.measurement.latencies_ms))


def render(result: Fig6Result) -> str:
    blocks = []
    lines = ["Fig. 6a — distance between consecutive BO configurations"]
    lines.append(format_series("  |z_t − z_{t−1}|", result.consecutive_distances))
    blocks.append("\n".join(lines))

    lines = ["Fig. 6b — best cost through iterations"]
    lines.append(format_series("  best cost", result.best_cost_trajectory))
    blocks.append("\n".join(lines))

    lines = [
        f"Fig. 6c — quality and normalized latency per iteration "
        f"(selected iteration: {result.best_index})"
    ]
    lines.append(format_series("  quality Q", result.qualities))
    lines.append(format_series("  norm. latency eps", result.epsilons))
    blocks.append("\n".join(lines))

    hbo_lat = result.hbo_latencies_ms()
    improvement = result.per_task_improvement()
    rows = [
        [
            tid,
            hbo_lat[tid],
            result.smq_latencies_ms[tid],
            f"{improvement[tid] * 100:+.1f}%",
        ]
        for tid in sorted(hbo_lat)
    ]
    blocks.append(
        format_table(
            ["Task", "HBO ms", "SMQ ms", "HBO improvement"],
            rows,
            title="Fig. 6d — per-task latency, HBO vs SMQ at matched ratio",
        )
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fig6()))

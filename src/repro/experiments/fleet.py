"""Fleet experiment: cold vs warm convergence under shared serving.

Beyond the paper: an edge server rarely tunes one device in isolation —
it serves a *fleet*. This driver runs a mixed fleet (Pixel 7 / Galaxy
S22, SC1-CF1 / SC2-CF2) against one shared optimizer service with the
cross-session warm-start store enabled. The first arrival of each
(device, scenario) cohort optimizes cold and donates its observations;
later arrivals of the same cohort warm-start from the donation. The
report compares the median number of control periods cold vs warm
sessions needed to come within 5% of their eventual best cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controller import HBOConfig
from repro.edge.runtime import EdgeConfig
from repro.edge.topology import EdgeTopologyConfig
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_kv, format_series, format_table
from repro.fleet.scheduler import FleetConfig, FleetResult, run_fleet
from repro.fleet.store import SharedConfigStore
from repro.rng import derive_seed

# The cohort table and the hand-written staggered schedule moved to the
# scenario generator (they are the catalog's `legacy-fleet` entry now);
# re-exported here because this was their public home.
from repro.scenarios.generator import COHORTS, default_fleet_specs

__all__ = [
    "COHORTS",
    "FleetExperimentResult",
    "default_fleet_specs",
    "render",
    "run_fleet_experiment",
]


@dataclass(frozen=True)
class FleetExperimentResult:
    """The fleet run plus the store it populated."""

    result: FleetResult
    store: SharedConfigStore
    n_sessions: int

    @property
    def median_converged_warm(self) -> Optional[float]:
        return self.result.aggregates.median_converged_warm

    @property
    def median_converged_cold(self) -> Optional[float]:
        return self.result.aggregates.median_converged_cold


def run_fleet_experiment(
    seed: int = DEFAULT_SEED,
    config: Optional[HBOConfig] = None,
    n_sessions: int = 16,
    warm_start: bool = True,
    store: Optional[SharedConfigStore] = None,
    edge: Optional[EdgeConfig] = None,
    topology: Optional[EdgeTopologyConfig] = None,
    placement: str = "price-aware",
    shards: int = 1,
) -> FleetExperimentResult:
    """Run the mixed fleet; pass ``warm_start=False`` for an all-cold
    control run (every session ignores the store on admission), an
    :class:`~repro.edge.runtime.EdgeConfig` to stand up one shared edge
    server all sessions offload to and contend on, or an
    :class:`~repro.edge.topology.EdgeTopologyConfig` to route sessions
    through a multi-server topology under ``placement``. ``shards > 1``
    steps the fleet in parallel worker processes with byte-identical
    output (see :mod:`repro.fleet.shard`)."""
    cfg = config if config is not None else HBOConfig()
    specs = default_fleet_specs(n_sessions, cfg, seed=seed)
    fleet_config = FleetConfig(
        hbo=cfg,
        warm_start=warm_start,
        edge=edge,
        topology=topology,
        placement=placement,
        shards=shards,
    )
    fleet_store = store if store is not None else SharedConfigStore()
    result = run_fleet(
        specs,
        seed=derive_seed(seed, "fleet"),
        config=fleet_config,
        store=fleet_store,
    )
    return FleetExperimentResult(
        result=result, store=fleet_store, n_sessions=n_sessions
    )


def render(experiment: FleetExperimentResult) -> str:
    """Human-readable fleet report (per-session table + aggregates)."""
    result = experiment.result
    aggregates = result.aggregates
    blocks = [
        format_kv(
            f"Fleet — {aggregates.n_sessions} sessions, "
            f"{result.ticks} ticks of {result.tick_s:g} s",
            [
                ["control periods run", aggregates.n_evaluations],
                ["p50 frame latency (ms)", aggregates.p50_latency_ms],
                ["p95 frame latency (ms)", aggregates.p95_latency_ms],
                ["p50 quality", aggregates.p50_quality],
                ["p95 quality", aggregates.p95_quality],
                ["mean best cost", aggregates.mean_best_cost],
                ["store hit rate", result.store_stats["hit_rate"]],
                ["store transfer rate", result.store_stats["transfer_rate"]],
                ["batched GP passes", result.service_stats["batches"]],
                ["proposals served", result.service_stats["proposals_served"]],
            ],
        )
    ]
    rows = [
        [
            report.session_id,
            report.device,
            f"{report.scenario}-{report.taskset}",
            report.arrival_s,
            "warm" if report.warm_started else "cold",
            report.warm_source if report.warm_source else "-",
            report.converged_at,
            report.best_cost,
        ]
        for report in result.reports
    ]
    blocks.append(
        format_table(
            ["session", "device", "workload", "arrival s", "start", "donor",
             "conv@", "best cost"],
            rows,
            title="Per-session outcomes",
        )
    )
    topology = result.topology_stats
    if topology is not None:
        placements = ", ".join(
            f"{node}={count}" for node, count in topology["placements"].items()
        )
        loads = ", ".join(
            f"{node}={load:.2f}"
            for node, load in topology["final_utilization"].items()
        )
        topology_rows = [
            ["nodes", topology["n_nodes"]],
            ["placement policy", topology["placement_policy"]],
            ["placements", placements],
            ["admission rejections", topology["rejections"]],
            ["shed fallbacks", topology["sheds"]],
            ["outage fallbacks", topology["outage_fallbacks"]],
            ["migrations", topology["migrations"]],
            ["final utilization", loads],
        ]
        if aggregates.p95_epsilon is not None:
            topology_rows.append(["p95 epsilon", aggregates.p95_epsilon])
        blocks.append(format_kv("Edge topology", topology_rows))
    warm = experiment.median_converged_warm
    cold = experiment.median_converged_cold
    convergence = [
        ["median periods to cohort best (cold)", cold if cold is not None else "n/a"],
        ["median periods to cohort best (warm)", warm if warm is not None else "n/a"],
    ]
    if warm is not None and cold is not None:
        convergence.append(
            ["warm speed-up (cold/warm)", cold / warm if warm else float("inf")]
        )
    blocks.append(format_kv("Cold vs warm convergence", convergence))
    histogram = [
        [f"{periods} period(s)", count] for periods, count in result.histogram.items()
    ]
    blocks.append(format_kv("Convergence histogram", histogram))
    example_warm = next((r for r in result.reports if r.warm_started), None)
    example_cold = next((r for r in result.reports if not r.warm_started), None)
    series = []
    if example_cold is not None:
        series.append(format_series(f"cold {example_cold.session_id}",
                                    list(example_cold.costs)))
    if example_warm is not None:
        series.append(format_series(f"warm {example_warm.session_id}",
                                    list(example_warm.costs)))
    if series:
        blocks.append("Example cost trajectories\n" + "\n".join(series))
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fleet_experiment()))

"""Scenario sweep: catalog workloads × serving modes.

Beyond the paper's single-session studies: the scenario catalog
(:mod:`repro.scenarios`) describes whole-fleet workloads — traffic
waves, flash crowds, mobility, thermal episodes, device-tier mixes —
and this driver runs each of them under more than one serving mode so
the tail-latency cost of a workload can be read off against how it is
served. The headline columns are pooled p95 ε (Eq. 4 normalized
latency) and the fleet's median periods-to-target.

``repro experiment scenarios`` renders the grid;
``tools/bench_pr10.py`` distills the same sweep into ``BENCH_pr10.json``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.controller import HBOConfig
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.scenarios.runner import ScenarioRun, run_scenario

#: Catalog entries the sweep covers (the acceptance floor is six).
SWEEP_SCENARIOS: Tuple[str, ...] = (
    "diurnal-baseline",
    "flash-crowd",
    "commuter-mobility",
    "hot-device",
    "mixed-fleet-churn",
    "low-tier-surge",
)

#: Serving modes each scenario is re-served through.
SWEEP_MODES: Tuple[str, ...] = ("device", "topology")


@dataclass(frozen=True)
class ScenarioSweepCell:
    """One (scenario, serving mode) run, reduced to its headline numbers."""

    scenario: str
    mode: str
    n_sessions: int
    p95_epsilon: Optional[float]
    p95_latency_ms: float
    mean_best_cost: float
    #: Median periods-to-cohort-target across every session in the cell.
    median_converged: float


@dataclass(frozen=True)
class ScenarioSweepResult:
    """The full grid, row-major in (scenario, mode) order."""

    cells: Tuple[ScenarioSweepCell, ...]
    seed: int
    n_sessions: int


def _cell_from_run(run: ScenarioRun, mode: str) -> ScenarioSweepCell:
    agg = run.result.aggregates
    return ScenarioSweepCell(
        scenario=run.compiled.spec.name,
        mode=mode,
        n_sessions=len(run.compiled.session_specs),
        p95_epsilon=agg.p95_epsilon,
        p95_latency_ms=agg.p95_latency_ms,
        mean_best_cost=agg.mean_best_cost,
        median_converged=float(
            statistics.median(r.converged_at for r in run.result.reports)
        ),
    )


def run_scenario_sweep(
    seed: int = DEFAULT_SEED,
    config: Optional[HBOConfig] = None,
    n_sessions: int = 6,
    scenarios: Tuple[str, ...] = SWEEP_SCENARIOS,
    modes: Tuple[str, ...] = SWEEP_MODES,
) -> ScenarioSweepResult:
    """Run every scenario under every serving mode.

    ``n_sessions`` shrinks each scenario's population uniformly so the
    grid stays tractable at paper-default budgets; the workload axes
    (arrival shape, mixes, mobility, thermal) are untouched, which keeps
    cells comparable along both axes.
    """
    cfg = config if config is not None else HBOConfig()
    cells = []
    for name in scenarios:
        for mode in modes:
            run = run_scenario(
                name, seed=seed, hbo=cfg, n_sessions=n_sessions, mode=mode
            )
            cells.append(_cell_from_run(run, mode))
    return ScenarioSweepResult(
        cells=tuple(cells), seed=seed, n_sessions=n_sessions
    )


def render(result: ScenarioSweepResult) -> str:
    """The sweep grid as an aligned table plus per-scenario deltas."""
    rows = []
    for cell in result.cells:
        rows.append(
            (
                cell.scenario,
                cell.mode,
                cell.n_sessions,
                "n/a" if cell.p95_epsilon is None
                else f"{cell.p95_epsilon:.4f}",
                f"{cell.p95_latency_ms:.2f}",
                f"{cell.mean_best_cost:.4f}",
                f"{cell.median_converged:.1f}",
            )
        )
    table = format_table(
        (
            "scenario", "serving", "sessions", "p95 eps", "p95 lat ms",
            "mean best", "med conv",
        ),
        rows,
        title=(
            f"scenario sweep (seed {result.seed}, "
            f"{result.n_sessions} sessions per cell)"
        ),
    )
    lines = [table, ""]
    by_scenario: dict = {}
    for cell in result.cells:
        by_scenario.setdefault(cell.scenario, []).append(cell)
    for name, cells in by_scenario.items():
        served = [c for c in cells if c.mode != "device"]
        device = [c for c in cells if c.mode == "device"]
        if not served or not device:
            continue
        base = device[0]
        for cell in served:
            if base.p95_epsilon is None or cell.p95_epsilon is None:
                continue
            delta = cell.p95_epsilon - base.p95_epsilon
            lines.append(
                f"{name}: serving via {cell.mode} moves p95 eps by "
                f"{delta:+.4f} vs device-only"
            )
    return "\n".join(lines) + "\n"

"""Fig. 9: the user study — perceived quality of HBO vs SML.

The paper's protocol (§V-E): a mixed heavy/light object scene with the
CF1 taskset; participants first see all objects at maximum quality as the
reference, then rate HBO and SML configurations 1–5 at a close and a far
viewing distance. HBO keeps a ~0.52 triangle ratio where SML must drop to
~0.2 for comparable AI latency, so HBO's ratings stay near the ceiling
(4.9 / 5.0) while SML's fall to 3.0 / 3.6 — up to 38.7% better perceived
quality.

We reproduce the protocol with the simulated rater panel: run HBO, run
SML to match its latency, evaluate scene quality at both distances, and
collect panel ratings per condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.ar.objects import catalog_sc1, catalog_sc2, expand_instances
from repro.ar.scene import Scene
from repro.baselines import StaticMatchLatencyBaseline
from repro.core.controller import HBOConfig, HBOController
from repro.core.system import MARSystem
from repro.device.executor import DeviceSimulator
from repro.device.profiles import PIXEL7
from repro.device.soc import pixel7_soc
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.models.tasks import taskset_cf1
from repro.rng import derive_seed, make_rng
from repro.userstudy import RaterPanel, StudyResult

CLOSE_USER = (0.0, 0.0, 0.2)
FAR_USER = (0.0, 0.0, -1.8)


@dataclass(frozen=True)
class Fig9Result:
    scores: Dict[str, StudyResult]  # keyed "HBO/close" etc.
    hbo_ratio: float
    sml_ratio: float

    def mean(self, key: str) -> float:
        return self.scores[key].mean_score

    def improvement(self) -> float:
        """Best-case HBO-over-SML rating improvement (the 38.7% headline)."""
        gains = [
            self.mean(f"HBO/{d}") / self.mean(f"SML/{d}") - 1.0
            for d in ("close", "far")
        ]
        return max(gains)


def _mixed_scene(seed: int) -> Scene:
    """A mix of heavy and lightweight objects (the §V-E scenario)."""
    rng = make_rng(seed)
    scene = Scene(user_position=CLOSE_USER)
    heavy = [(iid, obj) for iid, obj in expand_instances(catalog_sc1())][:4]
    light = [(iid, obj) for iid, obj in expand_instances(catalog_sc2())][:4]
    for iid, obj in heavy + light:
        scene.add(iid, obj, position=rng.uniform(-1.0, 1.0, 3) + [0, 0, 1.4])
    return scene


def _quality_at(system: MARSystem, user_position) -> float:
    original = system.scene.user_position
    system.scene.move_user(user_position)
    quality = system.scene.average_quality()
    system.scene.move_user(original)
    return quality


def run_fig9(seed: int = DEFAULT_SEED, config: HBOConfig = None) -> Fig9Result:  # type: ignore[assignment]
    cfg = config if config is not None else HBOConfig()

    def fresh_system(tag: str) -> MARSystem:
        return MARSystem(
            taskset=taskset_cf1(PIXEL7),
            device=DeviceSimulator(
                pixel7_soc(), seed=derive_seed(seed, "fig9", tag)
            ),
            scene=_mixed_scene(derive_seed(seed, "fig9-scene")),
        )

    hbo_system = fresh_system("hbo")
    controller = HBOController(hbo_system, cfg, seed=derive_seed(seed, "fig9-hbo"))
    hbo_result = controller.activate()
    hbo_ratio = hbo_result.best.triangle_ratio
    hbo_eps = hbo_result.best.measurement.epsilon

    sml_system = fresh_system("sml")
    sml = StaticMatchLatencyBaseline(target_epsilon=hbo_eps)
    sml_outcome = sml.run(sml_system)

    panel = RaterPanel(n_raters=7, seed=derive_seed(seed, "fig9-panel"))
    scores: Dict[str, StudyResult] = {}
    for label, system in (("HBO", hbo_system), ("SML", sml_system)):
        for distance_label, user in (("close", CLOSE_USER), ("far", FAR_USER)):
            quality = _quality_at(system, user)
            scores[f"{label}/{distance_label}"] = panel.rate(
                f"{label}/{distance_label}", quality
            )
    return Fig9Result(
        scores=scores, hbo_ratio=hbo_ratio, sml_ratio=sml_outcome.triangle_ratio
    )


def render(result: Fig9Result) -> str:
    rows = []
    for key in ("HBO/close", "HBO/far", "SML/close", "SML/far"):
        study = result.scores[key]
        rows.append([key, study.mean_score, " ".join(map(str, study.ratings))])
    table = format_table(
        ["Condition", "mean score (1-5)", "individual ratings"],
        rows,
        title="Fig. 9a — user study scores (7 simulated raters)",
    )
    footer = (
        f"triangle ratios: HBO={result.hbo_ratio:.2f}, SML={result.sml_ratio:.2f} "
        f"(paper: 0.52 vs 0.2)\n"
        f"best-case HBO rating improvement over SML: "
        f"{result.improvement() * 100:.1f}% (paper: up to 38.7%)"
    )
    return table + "\n\n" + footer


if __name__ == "__main__":
    print(render(run_fig9()))

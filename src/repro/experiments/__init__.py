"""Experiment drivers: one module per table/figure of the paper.

Each driver exposes a ``run_*`` function returning a structured result
plus a ``render(result) -> str`` producing the rows/series the paper
reports. The benchmark suite under ``benchmarks/`` invokes these, and
``python -m repro.experiments.<name>`` runs one standalone.

| Paper artifact | Module |
|---|---|
| Table I   | :mod:`repro.experiments.table1` |
| Fig. 2    | :mod:`repro.experiments.fig2` |
| Fig. 4 + Table III | :mod:`repro.experiments.fig4` |
| Fig. 5 + Table IV  | :mod:`repro.experiments.fig5` |
| Fig. 6    | :mod:`repro.experiments.fig6` |
| Fig. 7    | :mod:`repro.experiments.fig7` |
| Fig. 8    | :mod:`repro.experiments.fig8` |
| Fig. 9    | :mod:`repro.experiments.fig9` |

Beyond the paper, :mod:`repro.experiments.fleet` runs the multi-session
fleet (shared edge optimizer + cross-session warm starting) and reports
cold-vs-warm convergence.
"""

from repro.experiments import common, report

__all__ = ["common", "report"]

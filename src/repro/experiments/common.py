"""Shared experiment plumbing.

Standard HBO runs (paper defaults: w = 2.5, 5 random + 15 guided
iterations) against freshly-built scenario systems, with seeds derived so
every experiment is reproducible from one integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.controller import HBOConfig, HBOController, HBORunResult
from repro.core.system import MARSystem
from repro.device.profiles import PIXEL7
from repro.device.resources import Resource
from repro.rng import derive_seed
from repro.sim.scenarios import build_system

DEFAULT_SEED = 2024  # the paper's publication year, for flavor


@dataclass(frozen=True)
class HBORun:
    """A finished HBO activation on a scenario system."""

    scenario: str
    taskset: str
    system: MARSystem
    controller: HBOController
    result: HBORunResult

    @property
    def best_allocation(self) -> Mapping[str, Resource]:
        return self.result.best.allocation

    @property
    def best_triangle_ratio(self) -> float:
        return self.result.best.triangle_ratio

    @property
    def best_epsilon(self) -> float:
        return self.result.best.measurement.epsilon

    @property
    def best_quality(self) -> float:
        return self.result.best.measurement.quality


def run_hbo(
    scenario: str,
    taskset: str,
    seed: int = DEFAULT_SEED,
    device: str = PIXEL7,
    config: Optional[HBOConfig] = None,
    system: Optional[MARSystem] = None,
) -> HBORun:
    """Build the scenario system (unless given) and run one activation."""
    if system is None:
        system = build_system(
            scenario, taskset, device=device, seed=derive_seed(seed, scenario, taskset)
        )
    controller = HBOController(
        system,
        config if config is not None else HBOConfig(),
        seed=derive_seed(seed, "hbo", scenario, taskset),
    )
    result = controller.activate()
    return HBORun(
        scenario=scenario,
        taskset=taskset,
        system=system,
        controller=controller,
        result=result,
    )


def allocation_string(allocation: Mapping[str, Resource]) -> str:
    """Compact 'task→RES' rendering for report rows."""
    return ", ".join(
        f"{task}:{res.short}" for task, res in sorted(allocation.items())
    )

"""Fig. 8: event-based vs periodic activation over a scripted session.

Replays the §V-D script — ten object placements between t = 0 and
t = 255 s, then the user stepping away at t ≈ 320 s — twice: once under
the paper's event-based policy (5%/10% reward-drift thresholds) and once
under a periodic policy. Expected shapes: the event policy activates only
a handful of times (first placement, the heavy 9th/10th objects, the
distance change) while the periodic policy re-optimizes on schedule —
"seven times, potentially imposing unnecessary burdens".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.activation import EventBasedPolicy, PeriodicPolicy
from repro.core.controller import HBOConfig, HBOController
from repro.device.profiles import PIXEL7
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_series, format_table
from repro.rng import derive_seed
from repro.sim.engine import MonitoringEngine, MonitorReport
from repro.sim.scenarios import build_system, fig8_event_script


@dataclass(frozen=True)
class Fig8Result:
    event_report: MonitorReport
    periodic_report: MonitorReport

    @property
    def event_activations(self) -> int:
        return self.event_report.n_activations

    @property
    def periodic_activations(self) -> int:
        return self.periodic_report.n_activations


def _run_session(policy, seed: int, config: HBOConfig) -> MonitorReport:
    # Empty scene: the script places every object.
    system = build_system(
        "SC2", "CF1", device=PIXEL7, seed=seed, place_objects=False
    )
    controller = HBOController(system, config, seed=derive_seed(seed, "ctl"))
    engine = MonitoringEngine(
        controller, policy, monitor_interval_s=2.0, control_period_s=2.0
    )
    events, duration = fig8_event_script(seed=derive_seed(seed, "script"))
    return engine.run(events, duration)


def run_fig8(
    seed: int = DEFAULT_SEED,
    config: HBOConfig = None,  # type: ignore[assignment]
    periodic_interval_steps: int = 25,
) -> Fig8Result:
    cfg = config if config is not None else HBOConfig()
    event_report = _run_session(
        EventBasedPolicy(increase_threshold=0.05, decrease_threshold=0.10),
        derive_seed(seed, "event"),
        cfg,
    )
    periodic_report = _run_session(
        PeriodicPolicy(period=periodic_interval_steps),
        derive_seed(seed, "event"),  # same seed: identical scene script
        cfg,
    )
    return Fig8Result(event_report=event_report, periodic_report=periodic_report)


def render(result: Fig8Result) -> str:
    blocks = []
    for label, report in (
        ("event-based (paper policy)", result.event_report),
        ("periodic", result.periodic_report),
    ):
        times, rewards = report.trace.reward_series()
        lines = [f"Fig. 8 — {label}: {report.n_activations} activations"]
        lines.append(format_series("  reward B_t", rewards, precision=2))
        rows = [
            [
                f"{a.start_time_s:.0f}-{a.end_time_s:.0f}s",
                a.trigger,
                a.reward_before,
                a.reward_after,
                a.best_triangle_ratio,
            ]
            for a in report.trace.activations
        ]
        if rows:
            lines.append(
                format_table(
                    ["window", "trigger", "B before", "B after", "x*"], rows
                )
            )
        blocks.append("\n".join(lines))
    blocks.append(
        f"activation count: event-based={result.event_activations}, "
        f"periodic={result.periodic_activations} "
        "(the event policy should activate substantially fewer times)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fig8()))

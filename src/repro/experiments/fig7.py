"""Fig. 7: convergence robustness across repeated runs.

Six independent HBO runs (different random initializations, same
scenario) on SC1-CF2 and SC2-CF2. The paper's observation: runs may
settle on slightly different allocations or triangle ratios — because the
5-point random initialization differs — but all converge to a
similar-cost solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.controller import HBOConfig
from repro.experiments.common import DEFAULT_SEED, HBORun, run_hbo
from repro.experiments.report import format_series, format_table
from repro.rng import derive_seed

SCENARIOS: Tuple[Tuple[str, str], ...] = (("SC1", "CF2"), ("SC2", "CF2"))
N_RUNS = 6


@dataclass(frozen=True)
class Fig7Result:
    runs: Dict[str, List[HBORun]]  # keyed "SC1-CF2" / "SC2-CF2"

    def final_costs(self, key: str) -> np.ndarray:
        return np.asarray(
            [run.result.best.cost for run in self.runs[key]]
        )

    def cost_spread(self, key: str) -> float:
        """Max − min final best cost across runs (the robustness metric)."""
        costs = self.final_costs(key)
        return float(costs.max() - costs.min())

    def trajectories(self, key: str) -> List[np.ndarray]:
        return [run.result.best_cost_trajectory() for run in self.runs[key]]


def run_fig7(seed: int = DEFAULT_SEED, config: HBOConfig = None) -> Fig7Result:  # type: ignore[assignment]
    cfg = config if config is not None else HBOConfig()
    runs: Dict[str, List[HBORun]] = {}
    for scenario, taskset in SCENARIOS:
        key = f"{scenario}-{taskset}"
        runs[key] = [
            run_hbo(
                scenario,
                taskset,
                seed=derive_seed(seed, "fig7", key, run_index),
                config=cfg,
            )
            for run_index in range(N_RUNS)
        ]
    return Fig7Result(runs=runs)


def render(result: Fig7Result) -> str:
    blocks = []
    for key, runs in result.runs.items():
        lines = [f"Fig. 7 — best-cost convergence, {key}, {len(runs)} runs"]
        for i, trajectory in enumerate(result.trajectories(key), start=1):
            lines.append(format_series(f"  run {i}", trajectory))
        blocks.append("\n".join(lines))
        rows = [
            [
                f"run {i + 1}",
                run.result.best.cost,
                run.best_triangle_ratio,
                ", ".join(
                    f"{t}:{r.short}" for t, r in sorted(run.best_allocation.items())
                ),
            ]
            for i, run in enumerate(runs)
        ]
        rows.append(["spread (max-min cost)", result.cost_spread(key), "", ""])
        blocks.append(
            format_table(
                ["Run", "best cost", "x*", "allocation"],
                rows,
                title=f"{key} — final solutions across runs",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fig7()))

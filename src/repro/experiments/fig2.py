"""Fig. 2: the motivation study — taskset and triangle count reshape the
best allocation.

Three scripted runs on the Galaxy S22 reproduce the paper's time series:

- **(a)** five deconv-munet instances shuffled between CPU and GPU;
- **(b)** five deeplabv3 instances: progressive pile-up on NNAPI, a
  relocation to CPU under light load (helps the moved task only), virtual
  objects arriving (~t = 150/180 s, all NNAPI tasks spike), the same
  relocation now helping *everyone*, and a second CPU relocation that
  backfires for the CPU pair;
- **(c)** a mixed classification taskset across GPU and NNAPI.

Each run is a list of timed actions against the device simulator; the
result is a per-task latency series sampled every 5 simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.contention import SystemLoad
from repro.device.executor import DeviceSimulator
from repro.device.profiles import GALAXY_S22, get_profile
from repro.device.resources import Resource
from repro.device.soc import galaxy_s22_soc
from repro.errors import ExperimentError
from repro.experiments.report import format_series
from repro.rng import derive_seed


@dataclass(frozen=True)
class Action:
    """One timed intervention in a motivation run."""

    time_s: float
    kind: str  # "add" | "move" | "objects"
    task_id: str = ""
    model: str = ""
    resource: Optional[Resource] = None
    drawn_triangles: float = 0.0
    n_objects: int = 0

    def label(self) -> str:
        if self.kind in ("add", "move"):
            assert self.resource is not None
            return f"{self.resource.short}{self.task_id.split('_')[-1]}"
        return f"+{self.n_objects}obj"


@dataclass
class MotivationRun:
    """A finished scripted run."""

    name: str
    times_s: np.ndarray = field(default_factory=lambda: np.empty(0))
    latencies_ms: Dict[str, np.ndarray] = field(default_factory=dict)
    annotations: List[Tuple[float, str]] = field(default_factory=list)

    def series(self, task_id: str) -> np.ndarray:
        if task_id not in self.latencies_ms:
            raise ExperimentError(f"no series for task {task_id!r}")
        return self.latencies_ms[task_id]

    def mean_at(self, t_start: float, t_end: float) -> float:
        """Mean latency over tasks alive in a time window (NaN-aware)."""
        mask = (self.times_s >= t_start) & (self.times_s <= t_end)
        window = np.asarray(
            [series[mask] for series in self.latencies_ms.values()]
        )
        return float(np.nanmean(window))


def _execute(
    name: str,
    actions: Sequence[Action],
    duration_s: float,
    sample_interval_s: float = 5.0,
    seed: int = 0,
) -> MotivationRun:
    sim = DeviceSimulator(
        galaxy_s22_soc(), noise_sigma=0.03, seed=derive_seed(seed, "fig2", name)
    )
    ordered = sorted(actions, key=lambda a: a.time_s)
    all_ids = [a.task_id for a in ordered if a.kind == "add"]
    times = np.arange(0.0, duration_s + 1e-9, sample_interval_s)
    series: Dict[str, List[float]] = {tid: [] for tid in all_ids}
    annotations: List[Tuple[float, str]] = []

    next_action = 0
    for t in times:
        while next_action < len(ordered) and ordered[next_action].time_s <= t:
            action = ordered[next_action]
            if action.kind == "add":
                sim.add_task(
                    action.task_id,
                    get_profile(GALAXY_S22, action.model),
                    action.resource,
                )
            elif action.kind == "move":
                sim.set_allocation(action.task_id, action.resource)
            elif action.kind == "objects":
                sim.set_load(
                    SystemLoad(
                        rendered_triangles=action.drawn_triangles * 0.5,
                        n_objects=action.n_objects,
                        submitted_triangles=action.drawn_triangles,
                    )
                )
            else:
                raise ExperimentError(f"unknown action kind {action.kind!r}")
            annotations.append((action.time_s, action.label()))
            next_action += 1
        measured = sim.measure_period(n_samples=3)
        for tid in all_ids:
            series[tid].append(measured.get(tid, np.nan))

    return MotivationRun(
        name=name,
        times_s=times,
        latencies_ms={tid: np.asarray(vals) for tid, vals in series.items()},
        annotations=annotations,
    )


def run_fig2a(seed: int = 0) -> MotivationRun:
    """Five deconv-munet instances across CPU/GPU (Fig. 2a)."""
    a = []
    a.append(Action(0, "add", "deconv_1", "deconv-munet", Resource.CPU))
    a.append(Action(25, "move", "deconv_1", resource=Resource.GPU_DELEGATE))
    for i, t in enumerate((40, 55, 70, 85), start=2):
        a.append(Action(t, "add", f"deconv_{i}", "deconv-munet", Resource.GPU_DELEGATE))
    a.append(Action(120, "move", "deconv_5", resource=Resource.CPU))
    a.append(Action(150, "objects", drawn_triangles=500_000, n_objects=5))
    a.append(Action(200, "move", "deconv_4", resource=Resource.CPU))
    return _execute("fig2a-deconv-cpu-gpu", a, duration_s=240, seed=seed)


def run_fig2b(seed: int = 0) -> MotivationRun:
    """Five deeplabv3 instances, the paper's §III-B walk-through (Fig. 2b)."""
    a = []
    a.append(Action(0, "add", "deeplabv3_1", "deeplabv3", Resource.CPU))
    a.append(Action(25, "move", "deeplabv3_1", resource=Resource.NNAPI))
    for i, t in enumerate((40, 55, 75, 95), start=2):
        a.append(Action(t, "add", f"deeplabv3_{i}", "deeplabv3", Resource.NNAPI))
    a.append(Action(120, "move", "deeplabv3_5", resource=Resource.CPU))
    a.append(Action(140, "move", "deeplabv3_5", resource=Resource.NNAPI))
    a.append(Action(150, "objects", drawn_triangles=600_000, n_objects=4))
    a.append(Action(180, "objects", drawn_triangles=1_400_000, n_objects=8))
    a.append(Action(200, "move", "deeplabv3_5", resource=Resource.CPU))
    a.append(Action(220, "move", "deeplabv3_4", resource=Resource.CPU))
    return _execute("fig2b-deeplab-cpu-nnapi", a, duration_s=260, seed=seed)


def run_fig2c(seed: int = 0) -> MotivationRun:
    """Mixed classification taskset on GPU/NNAPI (Fig. 2c)."""
    a = []
    a.append(Action(0, "add", "mobilenet_1", "mobilenet-v1", Resource.GPU_DELEGATE))
    a.append(Action(20, "add", "inception_1", "inception-v1-q", Resource.NNAPI))
    a.append(Action(40, "add", "mobilenet_2", "mobilenet-v1", Resource.NNAPI))
    a.append(Action(60, "add", "inception_2", "inception-v1-q", Resource.NNAPI))
    a.append(Action(80, "add", "mobilenet_3", "mobilenet-v1", Resource.GPU_DELEGATE))
    a.append(Action(110, "objects", drawn_triangles=800_000, n_objects=6))
    a.append(Action(150, "move", "mobilenet_3", resource=Resource.NNAPI))
    a.append(Action(180, "move", "inception_2", resource=Resource.CPU))
    return _execute("fig2c-mixed-gpu-nnapi", a, duration_s=220, seed=seed)


def run_all(seed: int = 0) -> List[MotivationRun]:
    return [run_fig2a(seed), run_fig2b(seed), run_fig2c(seed)]


def render(runs: Sequence[MotivationRun]) -> str:
    blocks = []
    for run in runs:
        lines = [f"Fig. 2 run: {run.name}"]
        for tid, series in run.latencies_ms.items():
            clean = np.where(np.isnan(series), 0.0, series)
            lines.append(format_series(f"  {tid} (ms)", clean, precision=0))
        annot = ", ".join(f"{t:.0f}s:{label}" for t, label in run.annotations)
        lines.append(f"  actions: {annot}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_all()))

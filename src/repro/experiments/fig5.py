"""Fig. 5 + Table IV: HBO vs the four baselines on SC1-CF1.

Runs HBO once, then SMQ at HBO's triangle ratio (matched quality), SML
reducing triangles to HBO's latency (matched latency), BNT (dynamic
allocation only), and AllN — each on an identically-built fresh system —
and reports the paper's three panels: the allocation table (Table IV /
Fig. 5a), quality vs triangle ratio (Fig. 5b), and latency ratios
(Fig. 5c).

Headline shapes (§V-C): SMQ ≈ 1.5× HBO's latency at the same quality;
HBO ≈ 14.5% better quality than SML at comparable latency; BNT ≈ 2.2×
and AllN ≈ 3.5× HBO's latency while HBO gives up only ~13% quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines import (
    AllNNAPIBaseline,
    BaselineOutcome,
    BayesianNoTriangleBaseline,
    StaticMatchLatencyBaseline,
    StaticMatchQualityBaseline,
)
from repro.core.controller import HBOConfig
from repro.device.profiles import PIXEL7
from repro.experiments.common import DEFAULT_SEED, HBORun, run_hbo
from repro.experiments.report import format_table
from repro.rng import derive_seed
from repro.sim.scenarios import build_system

SCENARIO, TASKSET = "SC1", "CF1"


@dataclass(frozen=True)
class Fig5Result:
    hbo: HBORun
    baselines: Dict[str, BaselineOutcome]

    @property
    def hbo_epsilon(self) -> float:
        return self.hbo.best_epsilon

    @property
    def hbo_mean_latency(self) -> float:
        return self.hbo.result.best.measurement.mean_latency_ms

    def epsilon_ratio(self, name: str) -> float:
        """Baseline ε over HBO ε (Fig. 5c's normalized-latency view)."""
        return self.baselines[name].epsilon / self.hbo_epsilon

    def latency_ratio(self, name: str) -> float:
        """Baseline mean ms over HBO mean ms (raw latency view)."""
        return self.baselines[name].mean_latency_ms / self.hbo_mean_latency

    def quality_gap_vs_sml(self) -> float:
        """HBO quality improvement over SML at matched latency."""
        return self.hbo.best_quality / self.baselines["SML"].quality - 1.0


def _fresh_system(seed: int):
    return build_system(
        SCENARIO, TASKSET, device=PIXEL7, seed=derive_seed(seed, SCENARIO, TASKSET)
    )


def run_fig5(seed: int = DEFAULT_SEED, config: HBOConfig = None) -> Fig5Result:  # type: ignore[assignment]
    cfg = config if config is not None else HBOConfig()
    hbo = run_hbo(SCENARIO, TASKSET, seed=seed, config=cfg)

    baselines: Dict[str, BaselineOutcome] = {}
    smq = StaticMatchQualityBaseline(match_triangle_ratio=hbo.best_triangle_ratio)
    baselines["SMQ"] = smq.run(_fresh_system(seed))
    sml = StaticMatchLatencyBaseline(target_epsilon=hbo.best_epsilon)
    baselines["SML"] = sml.run(_fresh_system(seed))
    bnt = BayesianNoTriangleBaseline(config=cfg, seed=derive_seed(seed, "bnt"))
    baselines["BNT"] = bnt.run(_fresh_system(seed))
    baselines["AllN"] = AllNNAPIBaseline().run(_fresh_system(seed))
    return Fig5Result(hbo=hbo, baselines=baselines)


def render(result: Fig5Result) -> str:
    blocks = []

    # Table IV: allocations + triangle ratio.
    tasks = sorted(result.hbo.best_allocation)
    rows: List[List[str]] = []
    for task in tasks:
        rows.append(
            [
                task,
                str(result.hbo.best_allocation[task]).upper(),
                str(result.baselines["SMQ"].allocation[task]).upper(),
                str(result.baselines["BNT"].allocation[task]).upper(),
                str(result.baselines["AllN"].allocation[task]).upper(),
            ]
        )
    rows.append(
        [
            "Triangle Count Ratio",
            f"{result.hbo.best_triangle_ratio:.2f}",
            f"{result.baselines['SMQ'].triangle_ratio:.2f}, "
            f"{result.baselines['SML'].triangle_ratio:.2f}",
            f"{result.baselines['BNT'].triangle_ratio:.2f}",
            f"{result.baselines['AllN'].triangle_ratio:.2f}",
        ]
    )
    blocks.append(
        format_table(
            ["AI Model/Experiment", "HBO", "SMQ, SML", "BNT", "AllN"],
            rows,
            title="Table IV — AI allocation and triangle ratio comparison (SC1-CF1)",
        )
    )

    # Fig. 5b/5c: quality vs ratio and latency comparisons.
    perf_rows = [
        [
            "HBO",
            result.hbo.best_triangle_ratio,
            result.hbo.best_quality,
            result.hbo_epsilon,
            result.hbo_mean_latency,
            1.0,
            1.0,
        ]
    ]
    for name in ("SMQ", "SML", "BNT", "AllN"):
        outcome = result.baselines[name]
        perf_rows.append(
            [
                name,
                outcome.triangle_ratio,
                outcome.quality,
                outcome.epsilon,
                outcome.mean_latency_ms,
                result.epsilon_ratio(name),
                result.latency_ratio(name),
            ]
        )
    blocks.append(
        format_table(
            ["Policy", "ratio x", "quality Q", "eps", "mean ms", "eps/HBO", "ms/HBO"],
            perf_rows,
            title="Fig. 5b/5c — average quality and latency vs baselines",
        )
    )
    blocks.append(
        f"HBO quality gain over SML at matched latency: "
        f"{result.quality_gap_vs_sml() * 100:.1f}% (paper: 14.5%)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fig5()))

"""Table I: baseline (isolation) response times per model/resource/device.

The paper profiles each TFLite model alone — no other AI tasks, no
virtual objects — on GPU delegate, NNAPI and CPU for both phones. Here
the profiles are the simulator's calibration *inputs*, so this experiment
doubles as a fidelity check: it runs each model in isolation through the
full device simulator and verifies the measured latency reproduces the
profile (it must, within measurement noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.executor import DeviceSimulator
from repro.device.profiles import GALAXY_S22, PIXEL7, get_profile, model_names
from repro.device.resources import ALL_RESOURCES, Resource
from repro.device.soc import galaxy_s22_soc, pixel7_soc
from repro.experiments.report import format_table
from repro.rng import derive_seed

_SOCS = {GALAXY_S22: galaxy_s22_soc, PIXEL7: pixel7_soc}


@dataclass(frozen=True)
class Table1Row:
    """One model's isolation latencies on one device."""

    model: str
    task_type: str
    device: str
    latency_ms: Dict[Resource, Optional[float]]  # None = NA
    reference_ms: Dict[Resource, Optional[float]]  # the paper's numbers


@dataclass(frozen=True)
class Table1Result:
    rows: List[Table1Row]

    def max_relative_error(self) -> float:
        """Worst measured-vs-paper deviation across all cells."""
        worst = 0.0
        for row in self.rows:
            for res in ALL_RESOURCES:
                measured, ref = row.latency_ms[res], row.reference_ms[res]
                if measured is None or ref is None:
                    continue
                worst = max(worst, abs(measured - ref) / ref)
        return worst


def run_table1(seed: int = 0, samples: int = 30) -> Table1Result:
    """Measure every (device, model, resource) cell in isolation."""
    rows: List[Table1Row] = []
    for device, soc_factory in _SOCS.items():
        for model in model_names(device):
            profile = get_profile(device, model)
            measured: Dict[Resource, Optional[float]] = {}
            for resource in ALL_RESOURCES:
                if not profile.supports(resource):
                    measured[resource] = None
                    continue
                sim = DeviceSimulator(
                    soc_factory(),
                    noise_sigma=0.02,
                    seed=derive_seed(seed, device, model, str(resource)),
                )
                sim.add_task("probe", profile, resource)
                period = sim.measure_period(n_samples=samples)
                measured[resource] = period["probe"]
            rows.append(
                Table1Row(
                    model=model,
                    task_type=profile.task_type,
                    device=device,
                    latency_ms=measured,
                    reference_ms=dict(profile.latency_ms),
                )
            )
    return Table1Result(rows=rows)


def render(result: Table1Result) -> str:
    """Table I layout: model rows, GPU/NNAPI/CPU columns per device."""
    sections = []
    for device in (GALAXY_S22, PIXEL7):
        body = []
        for row in result.rows:
            if row.device != device:
                continue
            cells = [row.model, row.task_type]
            for res in (Resource.GPU_DELEGATE, Resource.NNAPI, Resource.CPU):
                value = row.latency_ms[res]
                cells.append("NA" if value is None else f"{value:.1f}")
            body.append(cells)
        sections.append(
            format_table(
                ["AI Model", "Task", "GPU", "NNAPI", "CPU"],
                body,
                title=f"Table I — isolation response time (ms), {device}",
            )
        )
    sections.append(
        f"max relative error vs paper profile: "
        f"{result.max_relative_error() * 100:.1f}%"
    )
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(render(run_table1()))

"""Extension experiments: the w sensitivity sweep and the device comparison.

Neither is a numbered artifact in the paper, but both answer questions
the text raises:

- §V-B uses w = 2.5 "as example weight" — :func:`run_w_sweep` maps how
  the chosen operating point (triangle ratio, quality, latency) moves
  across w, tracing the quality/latency Pareto knob the weight controls.
- §V-A states results were "similar" on the Galaxy S22 and shows the
  Pixel 7 — :func:`run_device_comparison` runs the same scenario on both
  simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.controller import HBOConfig, HBOController
from repro.device.profiles import GALAXY_S22, PIXEL7
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.rng import derive_seed
from repro.sim.scenarios import build_system


@dataclass(frozen=True)
class SweepPoint:
    """HBO's chosen operating point at one weight."""

    w: float
    triangle_ratio: float
    quality: float
    epsilon: float
    reward: float


@dataclass(frozen=True)
class WSweepResult:
    points: List[SweepPoint]

    def ratios(self) -> np.ndarray:
        return np.asarray([p.triangle_ratio for p in self.points])

    def epsilons(self) -> np.ndarray:
        return np.asarray([p.epsilon for p in self.points])


def run_w_sweep(
    weights: Sequence[float] = (0.5, 1.0, 2.5, 5.0, 10.0),
    scenario: str = "SC1",
    taskset: str = "CF1",
    seed: int = DEFAULT_SEED,
    config: HBOConfig = None,  # type: ignore[assignment]
) -> WSweepResult:
    """One HBO activation per weight on identically-built systems."""
    base = config if config is not None else HBOConfig()
    points: List[SweepPoint] = []
    for w in weights:
        cfg = HBOConfig(
            w=float(w),
            n_initial=base.n_initial,
            n_iterations=base.n_iterations,
            r_min=base.r_min,
        )
        system = build_system(
            scenario, taskset, seed=derive_seed(seed, "wsweep", scenario, taskset)
        )
        controller = HBOController(
            system, cfg, seed=derive_seed(seed, "wsweep-hbo", w)
        )
        result = controller.activate()
        measurement = result.final_measurement
        points.append(
            SweepPoint(
                w=float(w),
                triangle_ratio=result.best.triangle_ratio,
                quality=measurement.quality,
                epsilon=measurement.epsilon,
                reward=measurement.reward(float(w)),
            )
        )
    return WSweepResult(points=points)


def render_w_sweep(result: WSweepResult) -> str:
    rows = [
        [p.w, p.triangle_ratio, p.quality, p.epsilon, p.reward]
        for p in result.points
    ]
    return format_table(
        ["w", "x*", "quality Q", "eps", "reward B"],
        rows,
        title="Weight sweep — how w moves HBO's operating point (SC1-CF1)",
    )


@dataclass(frozen=True)
class DeviceRun:
    device: str
    triangle_ratio: float
    quality: float
    epsilon: float
    allocation_counts: Dict[str, int]  # resource short code -> count


@dataclass(frozen=True)
class DeviceComparisonResult:
    runs: List[DeviceRun]


def run_device_comparison(
    scenario: str = "SC1",
    taskset: str = "CF1",
    seed: int = DEFAULT_SEED,
    config: HBOConfig = None,  # type: ignore[assignment]
) -> DeviceComparisonResult:
    """The same scenario tuned on the Pixel 7 and the Galaxy S22."""
    cfg = config if config is not None else HBOConfig()
    runs: List[DeviceRun] = []
    for device in (PIXEL7, GALAXY_S22):
        system = build_system(
            scenario,
            taskset,
            device=device,
            seed=derive_seed(seed, "devices", scenario, taskset),
        )
        controller = HBOController(
            system, cfg, seed=derive_seed(seed, "devices-hbo", device)
        )
        result = controller.activate()
        measurement = result.final_measurement
        counts: Dict[str, int] = {}
        for resource in result.best.allocation.values():
            counts[resource.short] = counts.get(resource.short, 0) + 1
        runs.append(
            DeviceRun(
                device=device,
                triangle_ratio=result.best.triangle_ratio,
                quality=measurement.quality,
                epsilon=measurement.epsilon,
                allocation_counts=counts,
            )
        )
    return DeviceComparisonResult(runs=runs)


def render_device_comparison(result: DeviceComparisonResult) -> str:
    rows = [
        [
            run.device,
            run.triangle_ratio,
            run.quality,
            run.epsilon,
            ", ".join(f"{k}:{v}" for k, v in sorted(run.allocation_counts.items())),
        ]
        for run in result.runs
    ]
    return format_table(
        ["Device", "x*", "quality Q", "eps", "allocation"],
        rows,
        title="Device comparison — the same scenario on both Table I phones",
    )


if __name__ == "__main__":
    print(render_w_sweep(run_w_sweep()))
    print()
    print(render_device_comparison(run_device_comparison()))

"""Extension experiments: w sweep, device comparison, frontier grid.

None is a numbered artifact in the paper, but each answers a question
the text raises:

- §V-B uses w = 2.5 "as example weight" — :func:`run_w_sweep` maps how
  the chosen operating point (triangle ratio, quality, latency) moves
  across w, tracing the quality/latency Pareto knob the weight controls.
- §V-A states results were "similar" on the Galaxy S22 and shows the
  Pixel 7 — :func:`run_device_comparison` runs the same scenario on both
  simulated devices.
- §V-B claims BO converges "close to the global optimum" without ever
  computing one — :func:`run_frontier_grid` enumerates the *entire*
  decision lattice (every integer allocation count vector × a dense
  triangle-ratio grid) and scores it in one batched
  :func:`repro.backend.solve` pass, giving the exact noise-free optimum
  HBO can be judged against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.controller import HBOConfig, HBOController
from repro.core.frontier import FrontierEvaluator
from repro.device.profiles import GALAXY_S22, PIXEL7
from repro.device.resources import ALL_RESOURCES
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_table
from repro.rng import derive_seed
from repro.sim.scenarios import build_system


@dataclass(frozen=True)
class SweepPoint:
    """HBO's chosen operating point at one weight."""

    w: float
    triangle_ratio: float
    quality: float
    epsilon: float
    reward: float


@dataclass(frozen=True)
class WSweepResult:
    points: List[SweepPoint]

    def ratios(self) -> np.ndarray:
        return np.asarray([p.triangle_ratio for p in self.points])

    def epsilons(self) -> np.ndarray:
        return np.asarray([p.epsilon for p in self.points])


def run_w_sweep(
    weights: Sequence[float] = (0.5, 1.0, 2.5, 5.0, 10.0),
    scenario: str = "SC1",
    taskset: str = "CF1",
    seed: int = DEFAULT_SEED,
    config: HBOConfig = None,  # type: ignore[assignment]
) -> WSweepResult:
    """One HBO activation per weight on identically-built systems."""
    base = config if config is not None else HBOConfig()
    points: List[SweepPoint] = []
    for w in weights:
        cfg = HBOConfig(
            w=float(w),
            n_initial=base.n_initial,
            n_iterations=base.n_iterations,
            r_min=base.r_min,
        )
        system = build_system(
            scenario, taskset, seed=derive_seed(seed, "wsweep", scenario, taskset)
        )
        controller = HBOController(
            system, cfg, seed=derive_seed(seed, "wsweep-hbo", w)
        )
        result = controller.activate()
        measurement = result.final_measurement
        points.append(
            SweepPoint(
                w=float(w),
                triangle_ratio=result.best.triangle_ratio,
                quality=measurement.quality,
                epsilon=measurement.epsilon,
                reward=measurement.reward(float(w)),
            )
        )
    return WSweepResult(points=points)


def render_w_sweep(result: WSweepResult) -> str:
    rows = [
        [p.w, p.triangle_ratio, p.quality, p.epsilon, p.reward]
        for p in result.points
    ]
    return format_table(
        ["w", "x*", "quality Q", "eps", "reward B"],
        rows,
        title="Weight sweep — how w moves HBO's operating point (SC1-CF1)",
    )


@dataclass(frozen=True)
class DeviceRun:
    device: str
    triangle_ratio: float
    quality: float
    epsilon: float
    allocation_counts: Dict[str, int]  # resource short code -> count


@dataclass(frozen=True)
class DeviceComparisonResult:
    runs: List[DeviceRun]


def run_device_comparison(
    scenario: str = "SC1",
    taskset: str = "CF1",
    seed: int = DEFAULT_SEED,
    config: HBOConfig = None,  # type: ignore[assignment]
) -> DeviceComparisonResult:
    """The same scenario tuned on the Pixel 7 and the Galaxy S22."""
    cfg = config if config is not None else HBOConfig()
    runs: List[DeviceRun] = []
    for device in (PIXEL7, GALAXY_S22):
        system = build_system(
            scenario,
            taskset,
            device=device,
            seed=derive_seed(seed, "devices", scenario, taskset),
        )
        controller = HBOController(
            system, cfg, seed=derive_seed(seed, "devices-hbo", device)
        )
        result = controller.activate()
        measurement = result.final_measurement
        counts: Dict[str, int] = {}
        for resource in result.best.allocation.values():
            counts[resource.short] = counts.get(resource.short, 0) + 1
        runs.append(
            DeviceRun(
                device=device,
                triangle_ratio=result.best.triangle_ratio,
                quality=measurement.quality,
                epsilon=measurement.epsilon,
                allocation_counts=counts,
            )
        )
    return DeviceComparisonResult(runs=runs)


def render_device_comparison(result: DeviceComparisonResult) -> str:
    rows = [
        [
            run.device,
            run.triangle_ratio,
            run.quality,
            run.epsilon,
            ", ".join(f"{k}:{v}" for k, v in sorted(run.allocation_counts.items())),
        ]
        for run in result.runs
    ]
    return format_table(
        ["Device", "x*", "quality Q", "eps", "allocation"],
        rows,
        title="Device comparison — the same scenario on both Table I phones",
    )


@dataclass(frozen=True)
class FrontierOptimum:
    """The exact noise-free optimum at one weight."""

    w: float
    counts: Tuple[int, ...]  # tasks per resource (CPU, GPU, NNAPI)
    triangle_ratio: float
    quality: float
    epsilon: float
    phi: float


@dataclass(frozen=True)
class FrontierGridResult:
    device: str
    scenario: str
    taskset: str
    n_candidates: int
    optima: List[FrontierOptimum]


def run_frontier_grid(
    weights: Sequence[float] = (0.5, 1.0, 2.5, 5.0, 10.0),
    scenario: str = "SC1",
    taskset: str = "CF1",
    device: str = PIXEL7,
    n_ratios: int = 46,
    r_min: float = 0.1,
    seed: int = DEFAULT_SEED,
) -> FrontierGridResult:
    """Exhaustively score the decision lattice in one batched solve per w.

    Every integer count vector ``(k_CPU, k_GPU, k_NNAPI)`` summing to the
    task count is crossed with ``n_ratios`` equally-spaced triangle
    ratios; for 6 tasks and 46 ratios that is 1288 configurations, priced
    without a single control period on the live system.
    """
    system = build_system(
        scenario,
        taskset,
        device=device,
        seed=derive_seed(seed, "frontier", scenario, taskset),
    )
    n_tasks = len(system.taskset)
    n_res = len(ALL_RESOURCES)
    count_vectors = [
        ks
        for ks in itertools.product(range(n_tasks + 1), repeat=n_res)
        if sum(ks) == n_tasks
    ]
    ratios = np.linspace(r_min, 1.0, n_ratios)
    # counts/M recovers the counts exactly through the allocator's floor
    # for the task-set sizes in play, so the lattice is covered 1:1.
    zs = np.array(
        [
            [k / n_tasks for k in ks] + [float(x)]
            for ks in count_vectors
            for x in ratios
        ]
    )
    optima: List[FrontierOptimum] = []
    for w in weights:
        evaluator = FrontierEvaluator(system, w=float(w))
        result = evaluator.evaluate(zs)
        best = result.best_index
        optima.append(
            FrontierOptimum(
                w=float(w),
                counts=tuple(int(k) for k in result.counts[best]),
                triangle_ratio=float(result.triangle_ratio[best]),
                quality=float(result.quality[best]),
                epsilon=float(result.epsilon[best]),
                phi=float(result.phi[best]),
            )
        )
    return FrontierGridResult(
        device=device,
        scenario=scenario,
        taskset=taskset,
        n_candidates=int(zs.shape[0]),
        optima=optima,
    )


def render_frontier_grid(result: FrontierGridResult) -> str:
    rows = [
        [
            o.w,
            ", ".join(
                f"{res.short}:{k}" for res, k in zip(ALL_RESOURCES, o.counts)
            ),
            o.triangle_ratio,
            o.quality,
            o.epsilon,
            -o.phi,
        ]
        for o in result.optima
    ]
    return format_table(
        ["w", "allocation", "x*", "quality Q", "eps", "reward B"],
        rows,
        title=(
            f"Frontier grid — exact noise-free optimum over "
            f"{result.n_candidates} configurations "
            f"({result.scenario}-{result.taskset}, {result.device})"
        ),
    )


if __name__ == "__main__":
    print(render_w_sweep(run_w_sweep()))
    print()
    print(render_device_comparison(run_device_comparison()))
    print()
    print(render_frontier_grid(run_frontier_grid()))

"""Edge offloading experiment: does a fourth resource help, and when?

Beyond the paper: §VI sketches running the *optimizer* on an edge server;
this driver asks the stronger question — what happens when the edge can
also run the *AI tasks*. It compares two exhaustive frontier grids on the
heavy co-location scenario (SC1-CF1 on the Galaxy S22, where six
continuously-inferring tasks fight the render load for the SoC):

1. **device-only** — the paper's N = 3 lattice (CPU/GPU/NNAPI);
2. **edge-enabled** — the N = 4 lattice with ``EDGE`` as an allocation
   choice, priced through the wireless link + shared-server models.

Quality Q is a function of the triangle ratio x alone, so comparing the
two grids at *matched x* is an equal-quality comparison; the headline
number is the largest strict ε (Eq. 4) win the edge achieves at any
matched ratio. A second table replays the frontier under the
network-drift schedule (:data:`repro.sim.scenarios.NETWORK_DRIFT_SCHEDULE`)
to show the optimum retreating back on-device when the link collapses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.controller import HBOConfig
from repro.core.frontier import FrontierEvaluator, FrontierResult
from repro.device.profiles import GALAXY_S22
from repro.edge.admission import OPEN_ADMISSION, AdmissionConfig
from repro.edge.link import LinkConfig
from repro.edge.runtime import EdgeConfig, build_edge_runtime
from repro.edge.server import EdgeServerConfig
from repro.edge.topology import (
    EdgeNodeConfig,
    EdgeTopologyConfig,
    MigrationConfig,
)
from repro.errors import ExperimentError
from repro.experiments.common import DEFAULT_SEED
from repro.experiments.report import format_kv, format_table
from repro.fleet.scheduler import FleetConfig, FleetResult, FleetScheduler
from repro.fleet.session import SessionSpec
from repro.rng import derive_seed
from repro.sim.scenarios import (
    NETWORK_DRIFT_SCHEDULE,
    apply_network_drift,
    build_system,
)


@dataclass(frozen=True)
class FrontierPoint:
    """One grid's best row at a matched triangle ratio."""

    counts: Tuple[int, ...]
    epsilon: float
    quality: float
    phi: float


@dataclass(frozen=True)
class MatchedRatioRow:
    """Device-only vs edge-enabled optima at one triangle ratio."""

    triangle_ratio: float
    device_only: FrontierPoint
    edge: FrontierPoint

    @property
    def epsilon_win(self) -> float:
        """Strictly positive when the edge grid beats device-only ε at
        this (equal-quality) ratio."""
        return self.device_only.epsilon - self.edge.epsilon


@dataclass(frozen=True)
class DriftRow:
    """The edge-enabled frontier optimum under one drift breakpoint."""

    time_s: float
    bandwidth_scale: float
    n_offloaded: int
    epsilon: float
    phi: float


@dataclass(frozen=True)
class EdgeExperimentResult:
    device: str
    scenario: str
    taskset: str
    w: float
    n_device_candidates: int
    n_edge_candidates: int
    rows: List[MatchedRatioRow]
    drift: List[DriftRow]

    @property
    def best_win(self) -> MatchedRatioRow:
        """The matched ratio with the largest ε improvement."""
        if not self.rows:
            raise ExperimentError("edge experiment produced no matched rows")
        return max(self.rows, key=lambda r: r.epsilon_win)

    @property
    def n_strict_wins(self) -> int:
        return sum(1 for row in self.rows if row.epsilon_win > 0)


def _lattice(n_tasks: int, n_res: int, ratios: np.ndarray) -> np.ndarray:
    """Every integer count vector × every ratio, as BO vectors [c; x]."""
    count_vectors = [
        ks
        for ks in itertools.product(range(n_tasks + 1), repeat=n_res)
        if sum(ks) == n_tasks
    ]
    return np.array(
        [
            [k / n_tasks for k in ks] + [float(x)]
            for ks in count_vectors
            for x in ratios
        ]
    )


def _best_at_ratio(result: FrontierResult, ratio: float) -> FrontierPoint:
    mask = np.isclose(result.triangle_ratio, ratio)
    idx = np.flatnonzero(mask)
    best = idx[np.argmin(result.phi[idx])]
    return FrontierPoint(
        counts=tuple(int(k) for k in result.counts[best]),
        epsilon=float(result.epsilon[best]),
        quality=float(result.quality[best]),
        phi=float(result.phi[best]),
    )


def run_edge_experiment(
    scenario: str = "SC1",
    taskset: str = "CF1",
    device: str = GALAXY_S22,
    w: float = 2.5,
    n_ratios: int = 10,
    r_min: float = 0.1,
    seed: int = DEFAULT_SEED,
    edge_config: Optional[EdgeConfig] = None,
) -> EdgeExperimentResult:
    """Score both lattices and compare them at matched triangle ratios."""
    config = edge_config if edge_config is not None else EdgeConfig()
    build_seed = derive_seed(seed, "edge", scenario, taskset)

    device_system = build_system(scenario, taskset, device=device, seed=build_seed)
    runtime = build_edge_runtime(
        config=config, seed=derive_seed(seed, "edge-link"), session_id="edge-exp"
    )
    edge_system = build_system(
        scenario, taskset, device=device, seed=build_seed, edge=runtime
    )

    n_tasks = len(device_system.taskset)
    ratios = np.linspace(r_min, 1.0, n_ratios)
    zs_device = _lattice(n_tasks, device_system.n_resources, ratios)
    zs_edge = _lattice(n_tasks, edge_system.n_resources, ratios)

    device_result = FrontierEvaluator(device_system, w=w).evaluate(zs_device)
    edge_result = FrontierEvaluator(edge_system, w=w).evaluate(zs_edge)

    rows = [
        MatchedRatioRow(
            triangle_ratio=float(x),
            device_only=_best_at_ratio(device_result, float(x)),
            edge=_best_at_ratio(edge_result, float(x)),
        )
        for x in ratios
    ]

    # Drift replay: force the scheduled bandwidth scale, re-snapshot the
    # frontier (the evaluator prices through the live link state), and
    # record how many tasks the optimum still offloads.
    drift: List[DriftRow] = []
    for time_s, _scale in NETWORK_DRIFT_SCHEDULE:
        applied = apply_network_drift(runtime.link, time_s)
        result = FrontierEvaluator(edge_system, w=w).evaluate(zs_edge)
        best = result.best_index
        counts = tuple(int(k) for k in result.counts[best])
        drift.append(
            DriftRow(
                time_s=float(time_s),
                bandwidth_scale=float(applied),
                n_offloaded=int(counts[-1]),
                epsilon=float(result.epsilon[best]),
                phi=float(result.phi[best]),
            )
        )

    return EdgeExperimentResult(
        device=device,
        scenario=scenario,
        taskset=taskset,
        w=float(w),
        n_device_candidates=int(zs_device.shape[0]),
        n_edge_candidates=int(zs_edge.shape[0]),
        rows=rows,
        drift=drift,
    )


def render(result: EdgeExperimentResult) -> str:
    """Human-readable report: matched-ratio table + drift replay."""
    rows = [
        [
            row.triangle_ratio,
            ", ".join(str(k) for k in row.device_only.counts),
            row.device_only.epsilon,
            ", ".join(str(k) for k in row.edge.counts),
            row.edge.epsilon,
            row.epsilon_win,
        ]
        for row in result.rows
    ]
    best = result.best_win
    blocks = [
        format_kv(
            f"Edge offloading — {result.scenario}-{result.taskset} on "
            f"{result.device}, w={result.w:g}",
            [
                ["device-only candidates (N=3)", result.n_device_candidates],
                ["edge-enabled candidates (N=4)", result.n_edge_candidates],
                ["matched ratios with strict eps win", result.n_strict_wins],
                ["largest eps win", best.epsilon_win],
                ["  at triangle ratio x", best.triangle_ratio],
                ["  device-only eps", best.device_only.epsilon],
                ["  edge-enabled eps", best.edge.epsilon],
            ],
        ),
        format_table(
            ["x", "dev counts", "dev eps", "edge counts", "edge eps",
             "eps win"],
            rows,
            title="Equal-quality comparison (best grid point per ratio; "
            "counts are tasks per resource, edge last)",
        ),
        format_table(
            ["t (s)", "bw scale", "offloaded", "eps", "phi"],
            [
                [d.time_s, d.bandwidth_scale, d.n_offloaded, d.epsilon, d.phi]
                for d in result.drift
            ],
            title="Network-drift replay (frontier optimum per breakpoint)",
        ),
    ]
    return "\n\n".join(blocks)


def saturation_topology(
    n_servers: int = 2,
    capacity_streams: float = 2.5,
    queue_exponent: float = 2.5,
    admission: Optional[AdmissionConfig] = None,
) -> EdgeTopologyConfig:
    """A deliberately undersized topology for the saturation study.

    Every node keeps the default speedup but only ``capacity_streams``
    of processor-sharing headroom, and oversubscription thrashes — the
    ``queue_exponent`` is convex enough that running 3× over capacity is
    strictly worse than staying on-device — so a flash crowd
    oversubscribes it within a few arrivals. Migration is off: the study
    isolates admission control + shedding from migration effects.
    """
    if n_servers < 1:
        raise ExperimentError(f"n_servers must be >= 1, got {n_servers}")
    nodes = tuple(
        EdgeNodeConfig(
            server=EdgeServerConfig(
                capacity_streams=capacity_streams,
                queue_exponent=queue_exponent,
                name=f"edge-{i}",
            ),
            link=LinkConfig(rtt_ms=LinkConfig().rtt_ms + 2.0 * i),
            admission=admission if admission is not None else AdmissionConfig(),
            distance=10.0 * i,
        )
        for i in range(n_servers)
    )
    return EdgeTopologyConfig(nodes=nodes, migration=MigrationConfig(enabled=False))


def flash_crowd_specs(
    n_sessions: int, seed: int = DEFAULT_SEED, gap_s: float = 0.5
) -> List[SessionSpec]:
    """A homogeneous arrival wave on the heavy co-location workload.

    Every session is SC1-CF1 on the Galaxy S22 (six continuously
    inferring tasks — the heaviest offload demand in the catalog) and
    arrivals land ``gap_s`` apart, far faster than sessions drain, so
    server load only ever ratchets up.
    """
    if n_sessions < 1:
        raise ExperimentError(f"n_sessions must be >= 1, got {n_sessions}")
    placement_seed = derive_seed(seed, "saturation-placement")
    return [
        SessionSpec(
            session_id=f"w{index:02d}-galaxys22-SC1",
            device=GALAXY_S22,
            scenario="SC1",
            taskset="CF1",
            arrival_s=gap_s * index,
            placement_seed=placement_seed,
            position=10.0 * (index % 4),
        )
        for index in range(n_sessions)
    ]


@dataclass(frozen=True)
class SaturationStudyResult:
    """Admission-on vs open-admission fleets under the same flash crowd."""

    n_servers: int
    n_sessions: int
    admission: FleetResult
    open_admission: FleetResult

    @property
    def p95_epsilon_admission(self) -> float:
        if self.admission.aggregates.p95_epsilon is None:
            raise ExperimentError("admission run recorded no epsilons")
        return self.admission.aggregates.p95_epsilon

    @property
    def p95_epsilon_open(self) -> float:
        if self.open_admission.aggregates.p95_epsilon is None:
            raise ExperimentError("open-admission run recorded no epsilons")
        return self.open_admission.aggregates.p95_epsilon

    @property
    def epsilon_tail_win(self) -> float:
        """Strictly positive when admission control cuts the ε tail."""
        return self.p95_epsilon_open - self.p95_epsilon_admission


def run_saturation_study(
    seed: int = DEFAULT_SEED,
    config: Optional[HBOConfig] = None,
    n_servers: int = 2,
    n_sessions: int = 12,
    capacity_streams: float = 2.5,
    placement: str = "least-loaded",
) -> SaturationStudyResult:
    """Drive the same flash crowd through the same undersized topology
    twice — once with admission control + shedding, once wide open — and
    compare the pooled p95 of Eq. 4 normalized latency.

    Open admission lets every arrival pile onto the servers, so the
    processor-sharing slowdown blows up the ε tail; admission control
    bounces late arrivals (and sheds over-threshold tenants) back to
    their devices, trading their edge speedup for a bounded tail.
    """
    cfg = config if config is not None else HBOConfig()

    def run(admission: Optional[AdmissionConfig]) -> FleetResult:
        topology = saturation_topology(
            n_servers, capacity_streams=capacity_streams, admission=admission
        )
        scheduler = FleetScheduler(
            flash_crowd_specs(n_sessions, seed=seed),
            seed=derive_seed(seed, "saturation"),
            config=FleetConfig(
                hbo=cfg,
                warm_start=False,
                topology=topology,
                placement=placement,
            ),
        )
        return scheduler.run()

    return SaturationStudyResult(
        n_servers=n_servers,
        n_sessions=n_sessions,
        admission=run(None),
        open_admission=run(OPEN_ADMISSION),
    )


def render_saturation(result: SaturationStudyResult) -> str:
    """Human-readable saturation report (the BENCH_pr7 headline pair)."""
    admitted = result.admission.topology_stats or {}
    rows = [
        ["servers x sessions", f"{result.n_servers} x {result.n_sessions}"],
        ["p95 eps (open admission)", result.p95_epsilon_open],
        ["p95 eps (admission + fallback)", result.p95_epsilon_admission],
        ["eps tail win", result.epsilon_tail_win],
        ["admission rejections", admitted.get("rejections", 0)],
        ["shed fallbacks", admitted.get("sheds", 0)],
    ]
    return format_kv("Edge saturation — flash crowd vs admission control", rows)


if __name__ == "__main__":
    print(render(run_edge_experiment()))

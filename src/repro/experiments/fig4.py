"""Fig. 4 + Table III: HBO behavior across the four Table II scenarios.

Runs one HBO activation (5 random + 15 guided iterations, w = 2.5) on
each of SC1-CF1, SC2-CF1, SC1-CF2, SC2-CF2 and reports:

- (Fig. 4a / Table III) the chosen per-task allocation,
- (Fig. 4b / Table III) the chosen triangle-count ratio,
- (Fig. 4c) the best-cost convergence trajectory.

Expected shapes (§V-B): heavy-object scenarios (SC1) push GPU-preferring
tasks to the CPU and reduce the triangle ratio; light-object scenarios
(SC2) keep tasks near their preferred delegates and keep the ratio near 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.controller import HBOConfig
from repro.device.resources import Resource
from repro.experiments.common import DEFAULT_SEED, HBORun, run_hbo
from repro.experiments.report import format_series, format_table

SCENARIOS: Tuple[Tuple[str, str], ...] = (
    ("SC1", "CF1"),
    ("SC2", "CF1"),
    ("SC1", "CF2"),
    ("SC2", "CF2"),
)


@dataclass(frozen=True)
class Fig4Result:
    runs: Dict[str, HBORun]  # keyed "SC1-CF1" etc.

    def allocation_table(self) -> List[List[str]]:
        """Table III: task rows × scenario columns (+ triangle ratio row)."""
        all_tasks: List[str] = []
        for run in self.runs.values():
            for task_id in run.best_allocation:
                if task_id not in all_tasks:
                    all_tasks.append(task_id)
        rows = []
        for task_id in sorted(all_tasks):
            cells = [task_id]
            for key in self.keys():
                alloc = self.runs[key].best_allocation
                cells.append(str(alloc[task_id]).upper() if task_id in alloc else "-")
            rows.append(cells)
        ratio_row = ["Triangle Count Ratio"]
        for key in self.keys():
            ratio_row.append(f"{self.runs[key].best_triangle_ratio:.2f}")
        rows.append(ratio_row)
        return rows

    def keys(self) -> List[str]:
        return [f"{sc}-{cf}" for sc, cf in SCENARIOS]

    def convergence(self, key: str) -> np.ndarray:
        return self.runs[key].result.best_cost_trajectory()


def run_fig4(seed: int = DEFAULT_SEED, config: HBOConfig = None) -> Fig4Result:  # type: ignore[assignment]
    cfg = config if config is not None else HBOConfig()
    runs: Dict[str, HBORun] = {}
    for scenario, taskset in SCENARIOS:
        runs[f"{scenario}-{taskset}"] = run_hbo(scenario, taskset, seed=seed, config=cfg)
    return Fig4Result(runs=runs)


def render(result: Fig4Result) -> str:
    blocks = []
    blocks.append(
        format_table(
            ["AI Model/Scenario"] + result.keys(),
            result.allocation_table(),
            title="Table III — AI allocation and triangle ratio in four scenarios",
        )
    )
    lines = ["Fig. 4c — best-cost convergence (lower is better)"]
    for key in result.keys():
        lines.append(format_series(f"  {key}", result.convergence(key)))
    blocks.append("\n".join(lines))
    summary = []
    for key in result.keys():
        run = result.runs[key]
        counts: Dict[Resource, int] = {}
        for res in run.best_allocation.values():
            counts[res] = counts.get(res, 0) + 1
        summary.append(
            [
                key,
                run.best_triangle_ratio,
                run.best_epsilon,
                run.best_quality,
                run.result.best.cost,
                ", ".join(f"{r.short}:{n}" for r, n in sorted(counts.items(), key=lambda p: p[0].value)),
            ]
        )
    blocks.append(
        format_table(
            ["Scenario", "x*", "eps*", "Q*", "best cost", "alloc counts"],
            summary,
            title="Fig. 4a/4b summary",
        )
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":
    print(render(run_fig4()))

"""Plain-text rendering of experiment results.

The paper's artifacts are tables and line plots; in a terminal we render
tables with aligned columns and series as labelled rows of values with a
unicode sparkline, which is enough to eyeball convergence shapes and
compare against the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ExperimentError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    if isinstance(value, (int, np.integer)):
        return f"{value:,}"
    return str(value)


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode miniature of a series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * arr.size
    idx = ((arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def format_series(
    label: str, values: Sequence[float], precision: int = 3, max_values: int = 24
) -> str:
    """Render one series: label, sparkline, and (possibly thinned) values."""
    arr = list(values)
    spark = sparkline(arr)
    if len(arr) > max_values:
        step = max(1, len(arr) // max_values)
        shown = arr[::step]
        suffix = f" (every {step}th of {len(arr)})"
    else:
        shown, suffix = arr, ""
    nums = " ".join(f"{v:.{precision}f}" for v in shown)
    return f"{label:<28s} {spark}  [{nums}]{suffix}"


def format_kv(title: str, pairs: Sequence[Sequence[object]]) -> str:
    """Render key/value pairs under a heading."""
    width = max((len(str(k)) for k, _v in pairs), default=0)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {str(key).ljust(width)} : {_cell(value)}")
    return "\n".join(lines)

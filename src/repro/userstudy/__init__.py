"""Simulated user study (the paper's §V-E).

The paper validates perceived virtual-object quality with seven human
raters scoring 1–5 against a full-quality reference. We invert the
validated Eq. 1 quality model into a psychometric rating curve
(:mod:`repro.userstudy.perception`) and simulate a rater panel with
per-rater bias and trial noise (:mod:`repro.userstudy.panel`).
"""

from repro.userstudy.panel import RaterPanel, StudyResult
from repro.userstudy.perception import PerceptionModel

__all__ = ["PerceptionModel", "RaterPanel", "StudyResult"]

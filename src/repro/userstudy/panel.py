"""A simulated rater panel.

Seven students scored virtual-object quality in the paper. Each simulated
rater applies the shared psychometric curve plus a personal bias (some
people are stricter) and per-trial noise; individual ratings are integers
1–5 as a questionnaire collects, and the study statistic is their mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.userstudy.perception import PerceptionModel


@dataclass(frozen=True)
class StudyResult:
    """Ratings of one condition (e.g. 'HBO at close distance')."""

    condition: str
    ratings: List[int]

    @property
    def mean_score(self) -> float:
        if not self.ratings:
            raise ConfigurationError(f"{self.condition!r}: no ratings collected")
        return float(np.mean(self.ratings))

    @property
    def n_raters(self) -> int:
        return len(self.ratings)


class RaterPanel:
    """A fixed panel of simulated raters."""

    def __init__(
        self,
        n_raters: int = 7,
        perception: PerceptionModel = None,  # type: ignore[assignment]
        bias_sigma: float = 0.25,
        noise_sigma: float = 0.3,
        seed: SeedLike = None,
    ) -> None:
        if n_raters < 1:
            raise ConfigurationError(f"n_raters must be >= 1, got {n_raters}")
        if bias_sigma < 0 or noise_sigma < 0:
            raise ConfigurationError("bias/noise sigmas must be >= 0")
        self.perception = perception if perception is not None else PerceptionModel()
        self._rng = make_rng(seed)
        # Per-rater additive bias on the 1-5 scale, fixed for the panel's
        # lifetime (the same seven students rate every condition).
        self._biases = self._rng.normal(0.0, bias_sigma, n_raters)
        self.noise_sigma = float(noise_sigma)

    @property
    def n_raters(self) -> int:
        return int(self._biases.shape[0])

    def rate(self, condition: str, quality: float) -> StudyResult:
        """Collect one integer 1–5 rating per rater for a condition."""
        expected = self.perception.mean_opinion_score(quality)
        raw = (
            expected
            + self._biases
            + self._rng.normal(0.0, self.noise_sigma, self.n_raters)
        )
        ratings = [int(r) for r in np.clip(np.rint(raw), 1, 5)]
        return StudyResult(condition=condition, ratings=ratings)

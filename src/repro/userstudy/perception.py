"""Quality → mean-opinion-score psychometrics.

Maps the model quality Q of Eq. 2 (0 = fully degraded, 1 = reference) to
the 1–5 opinion scale of the paper's user study. Human quality ratings
follow a saturating psychometric curve: ratings stick near the ceiling
while degradation is imperceptible and fall steeply once artifacts become
visible. We use a logistic

    MOS(Q) = 1 + 4 · σ(k · (Q − q₀))

calibrated so the paper's own anchor points hold: HBO at Q ≈ 0.87 rates
≈ 4.9 and SML at triangle ratio 0.2 (Q ≈ 0.5) rates ≈ 3 (§V-E, Fig. 9a).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class PerceptionModel:
    """Logistic psychometric curve from model quality to a 1–5 score."""

    def __init__(self, steepness: float = 8.0, midpoint: float = 0.5) -> None:
        if steepness <= 0:
            raise ConfigurationError(f"steepness must be > 0, got {steepness}")
        if not 0.0 < midpoint < 1.0:
            raise ConfigurationError(
                f"midpoint must be in (0, 1), got {midpoint}"
            )
        self.steepness = float(steepness)
        self.midpoint = float(midpoint)

    def mean_opinion_score(self, quality: float) -> float:
        """Expected 1–5 rating for an object set at model quality Q."""
        if not 0.0 <= quality <= 1.0:
            raise ConfigurationError(f"quality must be in [0, 1], got {quality}")
        sigmoid = 1.0 / (1.0 + np.exp(-self.steepness * (quality - self.midpoint)))
        return float(1.0 + 4.0 * sigmoid)

    def mean_opinion_score_batch(self, qualities: np.ndarray) -> np.ndarray:
        q = np.asarray(qualities, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ConfigurationError("all qualities must be in [0, 1]")
        return 1.0 + 4.0 / (1.0 + np.exp(-self.steepness * (q - self.midpoint)))

"""The vectorized evaluation backend.

Every layer that scores a candidate configuration — the controller's
Algorithm 1 loop, the baselines' enumeration scans, the fleet tick, the
experiment sweeps — used to funnel through the scalar contention/cost
path one configuration at a time. This package batches that evaluation:
an :class:`EvalPlan` encodes N configurations as structure-of-arrays
(per-task resource choices, per-object triangle ratios, per-row SoC
parameters) and :func:`solve` computes contention slowdowns, per-task
latencies, Eq. 4 ε, Eq. 2 quality and the Eq. 5 cost φ for the whole
batch in NumPy, with no per-configuration Python loop.

Two numerical modes:

- ``solve(plan, exact=True)`` reproduces the scalar reference path
  (:mod:`repro.device.contention`) **bit-for-bit** — the measurement
  pipeline uses it so fixed-seed runs stay byte-identical.
- ``solve(plan)`` (fast mode) uses NumPy's SIMD ``**`` and matches the
  scalar path to ≲1e-12 — enumeration grids and acquisition frontiers
  use it.

See ``docs/performance.md`` for the design and parity guarantees.
"""

from repro.backend.plan import (
    KIND_CPU,
    KIND_GPU,
    KIND_NNAPI,
    KIND_PAD,
    PROC_CPU,
    PROC_GPU,
    PROC_NPU,
    EvalPlan,
)
from repro.backend.solve import SolveResult, exact_pow, solve

__all__ = [
    "EvalPlan",
    "SolveResult",
    "solve",
    "exact_pow",
    "KIND_CPU",
    "KIND_GPU",
    "KIND_NNAPI",
    "KIND_PAD",
    "PROC_CPU",
    "PROC_GPU",
    "PROC_NPU",
]

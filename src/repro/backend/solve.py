"""The vectorized solver: one NumPy pass over an :class:`EvalPlan`.

The math is a transcription of the scalar reference path —
:meth:`repro.device.contention.ContentionModel.latencies` composed with
:func:`repro.core.cost.normalized_average_latency`, Eq. 1/2 quality and
Eq. 5's φ — with every configuration a row. Two properties are load-bearing
and tested:

**Row independence.** Every operation is elementwise over rows, so a
configuration's result does not depend on what else is in the batch:
evaluating it alone and evaluating it among 10 000 others produce the
same bits.

**Exact mode.** With ``exact=True`` every fractional power goes through
:func:`exact_pow`, which evaluates Python-float ``**`` per element
(NumPy's SIMD ``pow`` differs from libm by 1 ulp on ~5% of inputs).
Together with add-zero padding and sequential (not pairwise) reductions
this makes the batched result **bit-identical** to the scalar path, not
merely close — which is what lets the measurement pipeline adopt the
backend without perturbing a single fixed-seed trajectory. Fast mode
skips the per-element calls and is what enumeration-grid callers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.backend.plan import (
    KIND_CPU,
    KIND_EDGE,
    KIND_GPU,
    KIND_NNAPI,
    PROC_CPU,
    PROC_GPU,
    PROC_NPU,
    EvalPlan,
)
from repro.obs import runtime as obs

_POW_OBJ = np.frompyfunc(pow, 2, 1)


def exact_pow(
    base: Union[np.ndarray, float], exponent: Union[np.ndarray, float]
) -> np.ndarray:
    """Elementwise ``base ** exponent`` with Python-float (libm) semantics.

    NumPy's vectorized ``**`` kernel rounds differently from CPython's
    ``float.__pow__`` on a few percent of inputs (1 ulp). Routing each
    element through the interpreter restores bitwise agreement with the
    scalar reference path at ~150 ns/element — cheap at the handful of
    power sites per row.
    """
    return _POW_OBJ(base, exponent).astype(np.float64)


@dataclass(frozen=True)
class SolveResult:
    """Batched evaluation outputs; optional blocks mirror the plan's."""

    slowdown: np.ndarray  # (n, 3): per-processor latency multiplier
    latency_ms: np.ndarray  # (n, m): per-task steady latency; 0.0 in padding
    epsilon: Optional[np.ndarray] = None  # (n,): Eq. 4
    quality: Optional[np.ndarray] = None  # (n,): Eq. 2
    phi: Optional[np.ndarray] = None  # (n,): Eq. 5 cost
    #: (n,): edge-server slowdown per row; present iff the plan carried
    #: an edge block.
    edge_slowdown: Optional[np.ndarray] = None


def solve(plan: EvalPlan, exact: bool = False) -> SolveResult:
    """Evaluate every configuration row of ``plan`` in one NumPy pass."""
    n, m = plan.n_rows, plan.n_task_slots
    with obs.span(
        "backend.solve", category="backend", n_rows=n, n_task_slots=m, exact=exact
    ):
        result = _solve_rows(plan, exact)
    obs.histogram("eval_batch_size").observe(float(n))
    return result


def _pow(base: np.ndarray, exponent: np.ndarray, exact: bool) -> np.ndarray:
    return exact_pow(base, exponent) if exact else base**exponent


def _solve_rows(plan: EvalPlan, exact: bool) -> SolveResult:
    n, m = plan.n_rows, plan.n_task_slots

    # --- demand streams per processor (scalar ref: ContentionModel.ai_streams).
    # Task contributions are accumulated slot-by-slot in task order; masked-out
    # rows add exact 0.0, which leaves the IEEE-754 running sum unchanged, so
    # each row's sum sees the same additions in the same order as the scalar
    # dict accumulation.
    cpu = (
        plan.n_objects / plan.cpu_objects_per_stream
        + plan.submitted_triangles / plan.cpu_triangles_per_stream
    )
    gpu = plan.base_gpu_streams + plan.n_objects / plan.gpu_objects_per_stream
    npu = np.zeros(n, dtype=np.float64)
    # Edge slots put no streams on the SoC; their server-side demand
    # accumulates separately (scalar ref: ContentionModel.edge_streams,
    # which starts from the snapshot's external streams).
    has_edge = plan.task_edge_tx_ms is not None
    edge: Optional[np.ndarray] = None
    if has_edge:
        assert plan.edge_extern_streams is not None
        edge = plan.edge_extern_streams.astype(np.float64)
    for j in range(m):
        kind = plan.task_kind[:, j]
        coverage = plan.task_npu_coverage[:, j]
        cpu = cpu + np.where(kind == KIND_CPU, plan.task_cpu_demand[:, j], 0.0)
        gpu = gpu + np.where(kind == KIND_GPU, plan.task_gpu_demand[:, j], 0.0)
        npu = npu + np.where(kind == KIND_NNAPI, coverage, 0.0)
        gpu = gpu + np.where(
            kind == KIND_NNAPI,
            (1.0 - coverage) * plan.task_gpu_demand[:, j],
            0.0,
        )
        if edge is not None:
            assert plan.task_edge_demand is not None
            edge = edge + np.where(
                kind == KIND_EDGE, plan.task_edge_demand[:, j], 0.0
            )

    # --- slowdowns (scalar ref: SoCSpec.slowdown / render_penalty).
    def processor_slowdown(streams: np.ndarray, proc: int) -> np.ndarray:
        cap = plan.capacity[:, proc]
        raw = _pow(streams / cap, plan.queue_exponent[:, proc], exact)
        return np.where(streams <= cap, 1.0, raw)

    render_gpu = plan.rendered_triangles / plan.gpu_triangles_per_stream
    rho = np.minimum(
        _pow(render_gpu / plan.gpu_render_saturation, plan.gpu_render_exponent, exact),
        plan.gpu_render_rho_max,
    )
    slow_cpu = processor_slowdown(cpu, PROC_CPU)
    slow_npu = processor_slowdown(npu, PROC_NPU)
    slow_gpu = processor_slowdown(gpu, PROC_GPU) * (1.0 / (1.0 - rho))
    slowdown = np.stack([slow_cpu, slow_gpu, slow_npu], axis=1)

    # Edge-server slowdown (scalar ref: edge.share.edge_slowdown). Only
    # materialized when the plan carries an edge block, so device-only
    # plans execute exactly the pre-edge instruction stream.
    slow_edge: Optional[np.ndarray] = None
    if edge is not None:
        assert plan.edge_capacity is not None
        assert plan.edge_queue_exponent is not None
        edge_cap = plan.edge_capacity
        edge_raw = _pow(edge / edge_cap, plan.edge_queue_exponent, exact)
        slow_edge = np.where(edge <= edge_cap, 1.0, edge_raw)

    # --- per-task latencies (scalar ref: ContentionModel.task_latency).
    latency = np.zeros((n, m), dtype=np.float64)
    for j in range(m):
        kind = plan.task_kind[:, j]
        iso = plan.task_iso_ms[:, j]
        coverage = plan.task_npu_coverage[:, j]
        base_comm = np.minimum(plan.nnapi_comm_ms, 0.5 * iso)
        work = iso - base_comm
        comm = base_comm * (
            1.0 + plan.nnapi_comm_gpu_factor * np.maximum(0.0, slow_gpu - 1.0)
        )
        npu_part = coverage * work * slow_npu
        gpu_part = (1.0 - coverage) * work * slow_gpu
        # Offloaded slots: transfer + server compute under sharing. For
        # edge slots, task_iso_ms holds the *compute* part (see the plan
        # builder); the transfer rides in task_edge_tx_ms. The tail term
        # stays a scalar 0.0 when no edge block is present — identical
        # bits to the pre-edge expression.
        tail: Union[np.ndarray, float]
        if slow_edge is not None:
            assert plan.task_edge_tx_ms is not None
            tail = np.where(
                kind == KIND_EDGE,
                plan.task_edge_tx_ms[:, j] + iso * slow_edge,
                0.0,
            )
        else:
            tail = 0.0
        latency[:, j] = np.where(
            kind == KIND_CPU,
            iso * slow_cpu,
            np.where(
                kind == KIND_GPU,
                iso * slow_gpu,
                np.where(kind == KIND_NNAPI, comm + npu_part + gpu_part, tail),
            ),
        )

    # --- Eq. 4 ε (scalar ref: core.cost.normalized_average_latency).
    epsilon: Optional[np.ndarray] = None
    if plan.task_expected_ms is not None:
        active = plan.task_active
        counts = active.sum(axis=1)
        total = np.zeros(n, dtype=np.float64)
        for j in range(m):
            expected = np.where(active[:, j], plan.task_expected_ms[:, j], 1.0)
            total = total + np.where(
                active[:, j], (latency[:, j] - expected) / expected, 0.0
            )
        epsilon = total / np.maximum(counts, 1)

    # --- Eq. 2 quality (scalar ref: DegradationModel.error / average_quality).
    quality: Optional[np.ndarray] = None
    if plan.obj_ratio is not None:
        assert plan.obj_a is not None and plan.obj_b is not None
        assert plan.obj_c is not None and plan.obj_denom is not None
        n_objects = plan.obj_ratio.shape[1]
        if n_objects == 0:
            quality = np.ones(n, dtype=np.float64)
        else:
            total_q = np.zeros(n, dtype=np.float64)
            for k in range(n_objects):
                ratio = plan.obj_ratio[:, k]
                numerator = (
                    plan.obj_a[:, k] * _pow(ratio, 2.0, exact)
                    + plan.obj_b[:, k] * ratio
                    + plan.obj_c[:, k]
                )
                error = np.clip(numerator / plan.obj_denom[:, k], 0.0, 1.0)
                total_q = total_q + (1.0 - error)
            quality = total_q / n_objects

    # --- Eq. 5 φ (scalar ref: core.cost.cost / the BNT latency-only variant).
    phi: Optional[np.ndarray] = None
    if plan.w is not None and epsilon is not None:
        if quality is not None:
            phi = -(quality - plan.w * epsilon)
        else:
            phi = plan.w * epsilon

    return SolveResult(
        slowdown=slowdown,
        latency_ms=latency,
        epsilon=epsilon,
        quality=quality,
        phi=phi,
        edge_slowdown=slow_edge,
    )

"""The :class:`EvalPlan`: N candidate configurations as structure-of-arrays.

A plan row is one complete configuration of the MAR system: which
resource each AI task runs on (with the task's demand profile), what
render load the scene puts on the SoC, and — optionally — the per-object
triangle ratios and degradation parameters needed to score quality, the
per-task expected latencies needed for Eq. 4's ε, and the Eq. 3 weight
needed for φ. Rows are independent: the solver never mixes information
across rows, which is what makes single-row and batched evaluation
bit-identical.

Task slots are padded to the widest row; padding slots carry
``KIND_PAD`` and contribute nothing to any aggregate (they are added as
exact ``0.0`` terms, which leaves IEEE-754 sums unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.resources import Processor, Resource
from repro.device.soc import SoCSpec
from repro.edge.share import (
    EdgeShare,
    edge_compute_ms,
    edge_demand,
    edge_tx_ms,
)
from repro.errors import DeviceError, EdgeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.load import SystemLoad, TaskPlacement

#: Processor axis of every ``(n, 3)`` array: CPU, GPU, NPU.
PROC_CPU, PROC_GPU, PROC_NPU = 0, 1, 2

#: Task-slot kinds — the allocation choice of one task. Padding is -1.
KIND_CPU, KIND_GPU, KIND_NNAPI, KIND_EDGE, KIND_PAD = 0, 1, 2, 3, -1

_RESOURCE_KIND: Dict[Resource, int] = {
    Resource.CPU: KIND_CPU,
    Resource.GPU_DELEGATE: KIND_GPU,
    Resource.NNAPI: KIND_NNAPI,
    Resource.EDGE: KIND_EDGE,
}


def resource_kind(resource: Resource) -> int:
    """The plan's integer code for an allocation choice."""
    return _RESOURCE_KIND[resource]


def _soc_column(socs: Sequence[SoCSpec], proc: Processor, table: str) -> np.ndarray:
    return np.array([getattr(s, table)[proc] for s in socs], dtype=np.float64)


@dataclass(frozen=True)
class EvalPlan:
    """Structure-of-arrays encoding of N candidate configurations.

    Shapes: ``(n,)`` per row, ``(n, m)`` per task slot, ``(n, 3)`` per
    processor (axis order ``PROC_CPU``/``PROC_GPU``/``PROC_NPU``), and
    ``(n, l)`` per scene object when the quality block is present.
    """

    # --- task slots -------------------------------------------------- (n, m)
    task_iso_ms: np.ndarray  # isolation latency on the chosen resource
    task_kind: np.ndarray  # KIND_* codes, int64; KIND_PAD for padding
    task_cpu_demand: np.ndarray
    task_gpu_demand: np.ndarray
    task_npu_coverage: np.ndarray
    # --- render load -------------------------------------------------- (n,)
    n_objects: np.ndarray
    submitted_triangles: np.ndarray
    rendered_triangles: np.ndarray
    base_gpu_streams: np.ndarray
    # --- SoC parameters ------------------------------------- (n, 3) / (n,)
    capacity: np.ndarray
    queue_exponent: np.ndarray
    nnapi_comm_ms: np.ndarray
    nnapi_comm_gpu_factor: np.ndarray
    gpu_render_saturation: np.ndarray
    gpu_render_exponent: np.ndarray
    gpu_render_rho_max: np.ndarray
    cpu_objects_per_stream: np.ndarray
    cpu_triangles_per_stream: np.ndarray
    gpu_objects_per_stream: np.ndarray
    gpu_triangles_per_stream: np.ndarray
    # --- optional cost blocks ----------------------------------------------
    task_expected_ms: Optional[np.ndarray] = None  # (n, m): Eq. 4 τᵉ
    obj_ratio: Optional[np.ndarray] = None  # (n, l): per-object R
    obj_a: Optional[np.ndarray] = None  # (n, l): Eq. 1 a_i
    obj_b: Optional[np.ndarray] = None
    obj_c: Optional[np.ndarray] = None
    obj_denom: Optional[np.ndarray] = None  # (n, l): D^{d_i}, precomputed
    w: Optional[float] = None  # Eq. 3 weight for φ
    # --- optional edge block (all-or-nothing; required iff any KIND_EDGE) --
    #: (n, m): link transfer of each offloaded slot at the row's snapshot.
    task_edge_tx_ms: Optional[np.ndarray] = None
    #: (n, m): stream weight each offloaded slot places on the server.
    task_edge_demand: Optional[np.ndarray] = None
    edge_capacity: Optional[np.ndarray] = None  # (n,)
    edge_queue_exponent: Optional[np.ndarray] = None  # (n,)
    edge_extern_streams: Optional[np.ndarray] = None  # (n,)
    #: Task ids per row (builders that know them fill this in).
    row_task_ids: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        n, m = self.task_iso_ms.shape
        for name in (
            "task_kind",
            "task_cpu_demand",
            "task_gpu_demand",
            "task_npu_coverage",
        ):
            if getattr(self, name).shape != (n, m):
                raise DeviceError(f"EvalPlan.{name} must have shape {(n, m)}")
        for name in (
            "n_objects",
            "submitted_triangles",
            "rendered_triangles",
            "base_gpu_streams",
            "nnapi_comm_ms",
            "nnapi_comm_gpu_factor",
            "gpu_render_saturation",
            "gpu_render_exponent",
            "gpu_render_rho_max",
            "cpu_objects_per_stream",
            "cpu_triangles_per_stream",
            "gpu_objects_per_stream",
            "gpu_triangles_per_stream",
        ):
            if getattr(self, name).shape != (n,):
                raise DeviceError(f"EvalPlan.{name} must have shape {(n,)}")
        for name in ("capacity", "queue_exponent"):
            if getattr(self, name).shape != (n, 3):
                raise DeviceError(f"EvalPlan.{name} must have shape {(n, 3)}")
        if self.task_expected_ms is not None and self.task_expected_ms.shape != (n, m):
            raise DeviceError(f"EvalPlan.task_expected_ms must have shape {(n, m)}")
        quality_blocks = (self.obj_ratio, self.obj_a, self.obj_b, self.obj_c, self.obj_denom)
        present = [blk is not None for blk in quality_blocks]
        if any(present) and not all(present):
            raise DeviceError("EvalPlan quality block must be all-or-nothing")
        if self.obj_ratio is not None:
            shape = self.obj_ratio.shape
            if len(shape) != 2 or shape[0] != n:
                raise DeviceError(f"EvalPlan.obj_ratio must have shape (n={n}, l)")
            for name in ("obj_a", "obj_b", "obj_c", "obj_denom"):
                blk = getattr(self, name)
                if blk is None or blk.shape != shape:
                    raise DeviceError(f"EvalPlan.{name} must have shape {shape}")
        edge_blocks = (
            self.task_edge_tx_ms,
            self.task_edge_demand,
            self.edge_capacity,
            self.edge_queue_exponent,
            self.edge_extern_streams,
        )
        edge_present = [blk is not None for blk in edge_blocks]
        if any(edge_present) and not all(edge_present):
            raise DeviceError("EvalPlan edge block must be all-or-nothing")
        if self.task_edge_tx_ms is not None:
            for name in ("task_edge_tx_ms", "task_edge_demand"):
                if getattr(self, name).shape != (n, m):
                    raise DeviceError(f"EvalPlan.{name} must have shape {(n, m)}")
            for name in (
                "edge_capacity",
                "edge_queue_exponent",
                "edge_extern_streams",
            ):
                if getattr(self, name).shape != (n,):
                    raise DeviceError(f"EvalPlan.{name} must have shape {(n,)}")
        elif bool(np.any(self.task_kind == KIND_EDGE)):
            raise EdgeError(
                "EvalPlan contains EDGE task slots but no edge block; "
                "pricing an offloaded placement needs an EdgeShare snapshot"
            )

    # --------------------------------------------------------------- queries

    @property
    def n_rows(self) -> int:
        return int(self.task_iso_ms.shape[0])

    @property
    def n_task_slots(self) -> int:
        return int(self.task_iso_ms.shape[1])

    @property
    def task_active(self) -> np.ndarray:
        """(n, m) bool: which task slots are real tasks (not padding)."""
        return self.task_kind != KIND_PAD

    def latency_map(self, latency_ms: np.ndarray, row: int) -> Dict[str, float]:
        """A solver latency matrix row as a ``task_id → ms`` dict.

        Requires ``row_task_ids`` to have been recorded by the builder.
        """
        if not self.row_task_ids:
            raise DeviceError("this EvalPlan was built without task ids")
        ids = self.row_task_ids[row]
        return {tid: float(latency_ms[row, j]) for j, tid in enumerate(ids)}

    # -------------------------------------------------------------- builders

    @classmethod
    def from_placement_rows(
        cls,
        rows: Sequence[Tuple],
    ) -> "EvalPlan":
        """Build a plan from ``(soc, placements, load[, edge_share])`` rows.

        This is the adapter constructor the scalar entry points use: one
        row per device/configuration, heterogeneous SoCs and task counts
        allowed (short rows are padded). The optional fourth element is
        an :class:`~repro.edge.share.EdgeShare` (or ``None``); the plan
        carries an edge block only if at least one row supplies one, so
        device-only batches stay byte-identical to pre-edge plans.
        """
        if not rows:
            raise DeviceError("EvalPlan needs at least one row")
        parsed: List[Tuple[SoCSpec, Sequence["TaskPlacement"], "SystemLoad", Optional[EdgeShare]]] = []
        for row in rows:
            if len(row) == 3:
                soc, placements, load = row
                share: Optional[EdgeShare] = None
            elif len(row) == 4:
                soc, placements, load, share = row
            else:
                raise DeviceError(
                    f"placement rows must have 3 or 4 elements, got {len(row)}"
                )
            parsed.append((soc, placements, load, share))
        n = len(parsed)
        m = max(len(placements) for _, placements, _, _ in parsed)
        any_edge = any(share is not None for _, _, _, share in parsed)
        iso = np.zeros((n, m), dtype=np.float64)
        kind = np.full((n, m), KIND_PAD, dtype=np.int64)
        cpu_demand = np.zeros((n, m), dtype=np.float64)
        gpu_demand = np.zeros((n, m), dtype=np.float64)
        coverage = np.zeros((n, m), dtype=np.float64)
        edge_tx = np.zeros((n, m), dtype=np.float64) if any_edge else None
        edge_dem = np.zeros((n, m), dtype=np.float64) if any_edge else None
        edge_cap = np.ones(n, dtype=np.float64) if any_edge else None
        edge_exp = np.ones(n, dtype=np.float64) if any_edge else None
        edge_ext = np.zeros(n, dtype=np.float64) if any_edge else None
        task_ids: List[Tuple[str, ...]] = []
        for i, (_, placements, _, share) in enumerate(parsed):
            if share is not None:
                assert edge_cap is not None and edge_exp is not None
                assert edge_ext is not None
                edge_cap[i] = share.capacity_streams
                edge_exp[i] = share.queue_exponent
                edge_ext[i] = share.extern_streams
            ids: List[str] = []
            for j, placement in enumerate(placements):
                profile = placement.profile
                if placement.resource is Resource.EDGE:
                    if share is None:
                        raise EdgeError(
                            f"{placement.task_id!r} is placed on EDGE but its "
                            "row carries no EdgeShare"
                        )
                    assert edge_tx is not None and edge_dem is not None
                    # iso carries the *server compute* part; the transfer
                    # rides in task_edge_tx_ms (same decomposition as the
                    # scalar ContentionModel.task_latency).
                    iso[i, j] = edge_compute_ms(profile, share)
                    edge_tx[i, j] = edge_tx_ms(profile, share)
                    edge_dem[i, j] = edge_demand(profile)
                else:
                    iso[i, j] = profile.latency(placement.resource)
                kind[i, j] = _RESOURCE_KIND[placement.resource]
                cpu_demand[i, j] = profile.cpu_demand
                gpu_demand[i, j] = profile.gpu_demand
                coverage[i, j] = profile.npu_coverage
                ids.append(placement.task_id)
            task_ids.append(tuple(ids))
        socs = [soc for soc, _, _, _ in parsed]
        loads = [load for _, _, load, _ in parsed]
        return cls(
            task_iso_ms=iso,
            task_kind=kind,
            task_cpu_demand=cpu_demand,
            task_gpu_demand=gpu_demand,
            task_npu_coverage=coverage,
            n_objects=np.array([float(ld.n_objects) for ld in loads]),
            submitted_triangles=np.array(
                [float(ld.submitted_triangles) for ld in loads]
            ),
            rendered_triangles=np.array(
                [float(ld.rendered_triangles) for ld in loads]
            ),
            base_gpu_streams=np.array([float(ld.base_gpu_streams) for ld in loads]),
            task_edge_tx_ms=edge_tx,
            task_edge_demand=edge_dem,
            edge_capacity=edge_cap,
            edge_queue_exponent=edge_exp,
            edge_extern_streams=edge_ext,
            row_task_ids=tuple(task_ids),
            **_soc_fields(socs),
        )

    @classmethod
    def from_arrays(
        cls,
        *,
        task_iso_ms: np.ndarray,
        task_kind: np.ndarray,
        task_cpu_demand: np.ndarray,
        task_gpu_demand: np.ndarray,
        task_npu_coverage: np.ndarray,
        n_objects: np.ndarray,
        submitted_triangles: np.ndarray,
        rendered_triangles: np.ndarray,
        base_gpu_streams: np.ndarray,
        capacity: np.ndarray,
        queue_exponent: np.ndarray,
        nnapi_comm_ms: np.ndarray,
        nnapi_comm_gpu_factor: np.ndarray,
        gpu_render_saturation: np.ndarray,
        gpu_render_exponent: np.ndarray,
        gpu_render_rho_max: np.ndarray,
        cpu_objects_per_stream: np.ndarray,
        cpu_triangles_per_stream: np.ndarray,
        gpu_objects_per_stream: np.ndarray,
        gpu_triangles_per_stream: np.ndarray,
        task_edge_tx_ms: Optional[np.ndarray] = None,
        task_edge_demand: Optional[np.ndarray] = None,
        edge_capacity: Optional[np.ndarray] = None,
        edge_queue_exponent: Optional[np.ndarray] = None,
        edge_extern_streams: Optional[np.ndarray] = None,
        row_task_ids: Tuple[Tuple[str, ...], ...] = (),
    ) -> "EvalPlan":
        """Column-ingest constructor: heterogeneous rows, zero adapters.

        The fleet's :class:`~repro.fleet.table.SessionTable` keeps these
        exact columns preassembled and slices the stepped rows straight
        in — no per-session ``TaskPlacement`` list, no per-call SoC
        tabulation. Inputs are row slices of caller-owned arrays; they
        are copied (``np.ascontiguousarray`` on an existing float64 slice
        made by fancy indexing is already a fresh array) so the plan
        stays immutable while the table keeps mutating.
        """
        return cls(
            task_iso_ms=np.ascontiguousarray(task_iso_ms, dtype=np.float64),
            task_kind=np.ascontiguousarray(task_kind, dtype=np.int64),
            task_cpu_demand=np.ascontiguousarray(
                task_cpu_demand, dtype=np.float64
            ),
            task_gpu_demand=np.ascontiguousarray(
                task_gpu_demand, dtype=np.float64
            ),
            task_npu_coverage=np.ascontiguousarray(
                task_npu_coverage, dtype=np.float64
            ),
            n_objects=np.ascontiguousarray(n_objects, dtype=np.float64),
            submitted_triangles=np.ascontiguousarray(
                submitted_triangles, dtype=np.float64
            ),
            rendered_triangles=np.ascontiguousarray(
                rendered_triangles, dtype=np.float64
            ),
            base_gpu_streams=np.ascontiguousarray(
                base_gpu_streams, dtype=np.float64
            ),
            capacity=np.ascontiguousarray(capacity, dtype=np.float64),
            queue_exponent=np.ascontiguousarray(
                queue_exponent, dtype=np.float64
            ),
            nnapi_comm_ms=np.ascontiguousarray(nnapi_comm_ms, dtype=np.float64),
            nnapi_comm_gpu_factor=np.ascontiguousarray(
                nnapi_comm_gpu_factor, dtype=np.float64
            ),
            gpu_render_saturation=np.ascontiguousarray(
                gpu_render_saturation, dtype=np.float64
            ),
            gpu_render_exponent=np.ascontiguousarray(
                gpu_render_exponent, dtype=np.float64
            ),
            gpu_render_rho_max=np.ascontiguousarray(
                gpu_render_rho_max, dtype=np.float64
            ),
            cpu_objects_per_stream=np.ascontiguousarray(
                cpu_objects_per_stream, dtype=np.float64
            ),
            cpu_triangles_per_stream=np.ascontiguousarray(
                cpu_triangles_per_stream, dtype=np.float64
            ),
            gpu_objects_per_stream=np.ascontiguousarray(
                gpu_objects_per_stream, dtype=np.float64
            ),
            gpu_triangles_per_stream=np.ascontiguousarray(
                gpu_triangles_per_stream, dtype=np.float64
            ),
            task_edge_tx_ms=(
                np.ascontiguousarray(task_edge_tx_ms, dtype=np.float64)
                if task_edge_tx_ms is not None
                else None
            ),
            task_edge_demand=(
                np.ascontiguousarray(task_edge_demand, dtype=np.float64)
                if task_edge_demand is not None
                else None
            ),
            edge_capacity=(
                np.ascontiguousarray(edge_capacity, dtype=np.float64)
                if edge_capacity is not None
                else None
            ),
            edge_queue_exponent=(
                np.ascontiguousarray(edge_queue_exponent, dtype=np.float64)
                if edge_queue_exponent is not None
                else None
            ),
            edge_extern_streams=(
                np.ascontiguousarray(edge_extern_streams, dtype=np.float64)
                if edge_extern_streams is not None
                else None
            ),
            row_task_ids=row_task_ids,
        )

    @classmethod
    def for_single_soc(
        cls,
        soc: SoCSpec,
        *,
        task_iso_ms: np.ndarray,
        task_kind: np.ndarray,
        task_cpu_demand: np.ndarray,
        task_gpu_demand: np.ndarray,
        task_npu_coverage: np.ndarray,
        n_objects: np.ndarray,
        submitted_triangles: np.ndarray,
        rendered_triangles: np.ndarray,
        base_gpu_streams: np.ndarray,
        task_expected_ms: Optional[np.ndarray] = None,
        obj_ratio: Optional[np.ndarray] = None,
        obj_a: Optional[np.ndarray] = None,
        obj_b: Optional[np.ndarray] = None,
        obj_c: Optional[np.ndarray] = None,
        obj_denom: Optional[np.ndarray] = None,
        w: Optional[float] = None,
        task_edge_tx_ms: Optional[np.ndarray] = None,
        task_edge_demand: Optional[np.ndarray] = None,
        edge_capacity: Optional[np.ndarray] = None,
        edge_queue_exponent: Optional[np.ndarray] = None,
        edge_extern_streams: Optional[np.ndarray] = None,
    ) -> "EvalPlan":
        """Build a homogeneous-device plan straight from arrays.

        The batch evaluators (frontier scoring, enumeration grids) use
        this: every row runs on the same SoC, so its parameters are
        broadcast rather than tabulated per row.
        """
        n = int(np.asarray(task_iso_ms).shape[0])
        return cls(
            task_iso_ms=np.asarray(task_iso_ms, dtype=np.float64),
            task_kind=np.asarray(task_kind, dtype=np.int64),
            task_cpu_demand=np.asarray(task_cpu_demand, dtype=np.float64),
            task_gpu_demand=np.asarray(task_gpu_demand, dtype=np.float64),
            task_npu_coverage=np.asarray(task_npu_coverage, dtype=np.float64),
            n_objects=np.asarray(n_objects, dtype=np.float64),
            submitted_triangles=np.asarray(submitted_triangles, dtype=np.float64),
            rendered_triangles=np.asarray(rendered_triangles, dtype=np.float64),
            base_gpu_streams=np.asarray(base_gpu_streams, dtype=np.float64),
            task_expected_ms=task_expected_ms,
            obj_ratio=obj_ratio,
            obj_a=obj_a,
            obj_b=obj_b,
            obj_c=obj_c,
            obj_denom=obj_denom,
            w=w,
            task_edge_tx_ms=task_edge_tx_ms,
            task_edge_demand=task_edge_demand,
            edge_capacity=edge_capacity,
            edge_queue_exponent=edge_queue_exponent,
            edge_extern_streams=edge_extern_streams,
            **_soc_fields([soc] * n),
        )


def _soc_fields(socs: Sequence[SoCSpec]) -> Dict[str, np.ndarray]:
    """Tabulate per-row SoC parameters for the plan constructor."""
    return {
        "capacity": np.stack(
            [
                _soc_column(socs, Processor.CPU, "capacity"),
                _soc_column(socs, Processor.GPU, "capacity"),
                _soc_column(socs, Processor.NPU, "capacity"),
            ],
            axis=1,
        ),
        "queue_exponent": np.stack(
            [
                _soc_column(socs, Processor.CPU, "queue_exponent"),
                _soc_column(socs, Processor.GPU, "queue_exponent"),
                _soc_column(socs, Processor.NPU, "queue_exponent"),
            ],
            axis=1,
        ),
        "nnapi_comm_ms": np.array([s.nnapi_comm_ms for s in socs]),
        "nnapi_comm_gpu_factor": np.array([s.nnapi_comm_gpu_factor for s in socs]),
        "gpu_render_saturation": np.array([s.gpu_render_saturation for s in socs]),
        "gpu_render_exponent": np.array([s.gpu_render_exponent for s in socs]),
        "gpu_render_rho_max": np.array([s.gpu_render_rho_max for s in socs]),
        "cpu_objects_per_stream": np.array(
            [s.render_cost.cpu_objects_per_stream for s in socs]
        ),
        "cpu_triangles_per_stream": np.array(
            [s.render_cost.cpu_triangles_per_stream for s in socs]
        ),
        "gpu_objects_per_stream": np.array(
            [s.render_cost.gpu_objects_per_stream for s in socs]
        ),
        "gpu_triangles_per_stream": np.array(
            [s.render_cost.gpu_triangles_per_stream for s in socs]
        ),
    }

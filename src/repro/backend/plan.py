"""The :class:`EvalPlan`: N candidate configurations as structure-of-arrays.

A plan row is one complete configuration of the MAR system: which
resource each AI task runs on (with the task's demand profile), what
render load the scene puts on the SoC, and — optionally — the per-object
triangle ratios and degradation parameters needed to score quality, the
per-task expected latencies needed for Eq. 4's ε, and the Eq. 3 weight
needed for φ. Rows are independent: the solver never mixes information
across rows, which is what makes single-row and batched evaluation
bit-identical.

Task slots are padded to the widest row; padding slots carry
``KIND_PAD`` and contribute nothing to any aggregate (they are added as
exact ``0.0`` terms, which leaves IEEE-754 sums unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.resources import Processor, Resource
from repro.device.soc import SoCSpec
from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.device.contention import SystemLoad, TaskPlacement

#: Processor axis of every ``(n, 3)`` array: CPU, GPU, NPU.
PROC_CPU, PROC_GPU, PROC_NPU = 0, 1, 2

#: Task-slot kinds — the allocation choice of one task. Padding is -1.
KIND_CPU, KIND_GPU, KIND_NNAPI, KIND_PAD = 0, 1, 2, -1

_RESOURCE_KIND: Dict[Resource, int] = {
    Resource.CPU: KIND_CPU,
    Resource.GPU_DELEGATE: KIND_GPU,
    Resource.NNAPI: KIND_NNAPI,
}


def resource_kind(resource: Resource) -> int:
    """The plan's integer code for an allocation choice."""
    return _RESOURCE_KIND[resource]


def _soc_column(socs: Sequence[SoCSpec], proc: Processor, table: str) -> np.ndarray:
    return np.array([getattr(s, table)[proc] for s in socs], dtype=np.float64)


@dataclass(frozen=True)
class EvalPlan:
    """Structure-of-arrays encoding of N candidate configurations.

    Shapes: ``(n,)`` per row, ``(n, m)`` per task slot, ``(n, 3)`` per
    processor (axis order ``PROC_CPU``/``PROC_GPU``/``PROC_NPU``), and
    ``(n, l)`` per scene object when the quality block is present.
    """

    # --- task slots -------------------------------------------------- (n, m)
    task_iso_ms: np.ndarray  # isolation latency on the chosen resource
    task_kind: np.ndarray  # KIND_* codes, int64; KIND_PAD for padding
    task_cpu_demand: np.ndarray
    task_gpu_demand: np.ndarray
    task_npu_coverage: np.ndarray
    # --- render load -------------------------------------------------- (n,)
    n_objects: np.ndarray
    submitted_triangles: np.ndarray
    rendered_triangles: np.ndarray
    base_gpu_streams: np.ndarray
    # --- SoC parameters ------------------------------------- (n, 3) / (n,)
    capacity: np.ndarray
    queue_exponent: np.ndarray
    nnapi_comm_ms: np.ndarray
    nnapi_comm_gpu_factor: np.ndarray
    gpu_render_saturation: np.ndarray
    gpu_render_exponent: np.ndarray
    gpu_render_rho_max: np.ndarray
    cpu_objects_per_stream: np.ndarray
    cpu_triangles_per_stream: np.ndarray
    gpu_objects_per_stream: np.ndarray
    gpu_triangles_per_stream: np.ndarray
    # --- optional cost blocks ----------------------------------------------
    task_expected_ms: Optional[np.ndarray] = None  # (n, m): Eq. 4 τᵉ
    obj_ratio: Optional[np.ndarray] = None  # (n, l): per-object R
    obj_a: Optional[np.ndarray] = None  # (n, l): Eq. 1 a_i
    obj_b: Optional[np.ndarray] = None
    obj_c: Optional[np.ndarray] = None
    obj_denom: Optional[np.ndarray] = None  # (n, l): D^{d_i}, precomputed
    w: Optional[float] = None  # Eq. 3 weight for φ
    #: Task ids per row (builders that know them fill this in).
    row_task_ids: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        n, m = self.task_iso_ms.shape
        for name in (
            "task_kind",
            "task_cpu_demand",
            "task_gpu_demand",
            "task_npu_coverage",
        ):
            if getattr(self, name).shape != (n, m):
                raise DeviceError(f"EvalPlan.{name} must have shape {(n, m)}")
        for name in (
            "n_objects",
            "submitted_triangles",
            "rendered_triangles",
            "base_gpu_streams",
            "nnapi_comm_ms",
            "nnapi_comm_gpu_factor",
            "gpu_render_saturation",
            "gpu_render_exponent",
            "gpu_render_rho_max",
            "cpu_objects_per_stream",
            "cpu_triangles_per_stream",
            "gpu_objects_per_stream",
            "gpu_triangles_per_stream",
        ):
            if getattr(self, name).shape != (n,):
                raise DeviceError(f"EvalPlan.{name} must have shape {(n,)}")
        for name in ("capacity", "queue_exponent"):
            if getattr(self, name).shape != (n, 3):
                raise DeviceError(f"EvalPlan.{name} must have shape {(n, 3)}")
        if self.task_expected_ms is not None and self.task_expected_ms.shape != (n, m):
            raise DeviceError(f"EvalPlan.task_expected_ms must have shape {(n, m)}")
        quality_blocks = (self.obj_ratio, self.obj_a, self.obj_b, self.obj_c, self.obj_denom)
        present = [blk is not None for blk in quality_blocks]
        if any(present) and not all(present):
            raise DeviceError("EvalPlan quality block must be all-or-nothing")
        if self.obj_ratio is not None:
            shape = self.obj_ratio.shape
            if len(shape) != 2 or shape[0] != n:
                raise DeviceError(f"EvalPlan.obj_ratio must have shape (n={n}, l)")
            for name in ("obj_a", "obj_b", "obj_c", "obj_denom"):
                blk = getattr(self, name)
                if blk is None or blk.shape != shape:
                    raise DeviceError(f"EvalPlan.{name} must have shape {shape}")

    # --------------------------------------------------------------- queries

    @property
    def n_rows(self) -> int:
        return int(self.task_iso_ms.shape[0])

    @property
    def n_task_slots(self) -> int:
        return int(self.task_iso_ms.shape[1])

    @property
    def task_active(self) -> np.ndarray:
        """(n, m) bool: which task slots are real tasks (not padding)."""
        return self.task_kind != KIND_PAD

    def latency_map(self, latency_ms: np.ndarray, row: int) -> Dict[str, float]:
        """A solver latency matrix row as a ``task_id → ms`` dict.

        Requires ``row_task_ids`` to have been recorded by the builder.
        """
        if not self.row_task_ids:
            raise DeviceError("this EvalPlan was built without task ids")
        ids = self.row_task_ids[row]
        return {tid: float(latency_ms[row, j]) for j, tid in enumerate(ids)}

    # -------------------------------------------------------------- builders

    @classmethod
    def from_placement_rows(
        cls,
        rows: Sequence[
            Tuple[SoCSpec, Sequence["TaskPlacement"], "SystemLoad"]
        ],
    ) -> "EvalPlan":
        """Build a plan from ``(soc, placements, load)`` rows.

        This is the adapter constructor the scalar entry points use: one
        row per device/configuration, heterogeneous SoCs and task counts
        allowed (short rows are padded).
        """
        if not rows:
            raise DeviceError("EvalPlan needs at least one row")
        n = len(rows)
        m = max(len(placements) for _, placements, _ in rows)
        iso = np.zeros((n, m), dtype=np.float64)
        kind = np.full((n, m), KIND_PAD, dtype=np.int64)
        cpu_demand = np.zeros((n, m), dtype=np.float64)
        gpu_demand = np.zeros((n, m), dtype=np.float64)
        coverage = np.zeros((n, m), dtype=np.float64)
        task_ids: List[Tuple[str, ...]] = []
        for i, (_, placements, _) in enumerate(rows):
            ids: List[str] = []
            for j, placement in enumerate(placements):
                profile = placement.profile
                iso[i, j] = profile.latency(placement.resource)
                kind[i, j] = _RESOURCE_KIND[placement.resource]
                cpu_demand[i, j] = profile.cpu_demand
                gpu_demand[i, j] = profile.gpu_demand
                coverage[i, j] = profile.npu_coverage
                ids.append(placement.task_id)
            task_ids.append(tuple(ids))
        socs = [soc for soc, _, _ in rows]
        loads = [load for _, _, load in rows]
        return cls(
            task_iso_ms=iso,
            task_kind=kind,
            task_cpu_demand=cpu_demand,
            task_gpu_demand=gpu_demand,
            task_npu_coverage=coverage,
            n_objects=np.array([float(ld.n_objects) for ld in loads]),
            submitted_triangles=np.array(
                [float(ld.submitted_triangles) for ld in loads]
            ),
            rendered_triangles=np.array(
                [float(ld.rendered_triangles) for ld in loads]
            ),
            base_gpu_streams=np.array([float(ld.base_gpu_streams) for ld in loads]),
            row_task_ids=tuple(task_ids),
            **_soc_fields(socs),
        )

    @classmethod
    def for_single_soc(
        cls,
        soc: SoCSpec,
        *,
        task_iso_ms: np.ndarray,
        task_kind: np.ndarray,
        task_cpu_demand: np.ndarray,
        task_gpu_demand: np.ndarray,
        task_npu_coverage: np.ndarray,
        n_objects: np.ndarray,
        submitted_triangles: np.ndarray,
        rendered_triangles: np.ndarray,
        base_gpu_streams: np.ndarray,
        task_expected_ms: Optional[np.ndarray] = None,
        obj_ratio: Optional[np.ndarray] = None,
        obj_a: Optional[np.ndarray] = None,
        obj_b: Optional[np.ndarray] = None,
        obj_c: Optional[np.ndarray] = None,
        obj_denom: Optional[np.ndarray] = None,
        w: Optional[float] = None,
    ) -> "EvalPlan":
        """Build a homogeneous-device plan straight from arrays.

        The batch evaluators (frontier scoring, enumeration grids) use
        this: every row runs on the same SoC, so its parameters are
        broadcast rather than tabulated per row.
        """
        n = int(np.asarray(task_iso_ms).shape[0])
        return cls(
            task_iso_ms=np.asarray(task_iso_ms, dtype=np.float64),
            task_kind=np.asarray(task_kind, dtype=np.int64),
            task_cpu_demand=np.asarray(task_cpu_demand, dtype=np.float64),
            task_gpu_demand=np.asarray(task_gpu_demand, dtype=np.float64),
            task_npu_coverage=np.asarray(task_npu_coverage, dtype=np.float64),
            n_objects=np.asarray(n_objects, dtype=np.float64),
            submitted_triangles=np.asarray(submitted_triangles, dtype=np.float64),
            rendered_triangles=np.asarray(rendered_triangles, dtype=np.float64),
            base_gpu_streams=np.asarray(base_gpu_streams, dtype=np.float64),
            task_expected_ms=task_expected_ms,
            obj_ratio=obj_ratio,
            obj_a=obj_a,
            obj_b=obj_b,
            obj_c=obj_c,
            obj_denom=obj_denom,
            w=w,
            **_soc_fields([soc] * n),
        )


def _soc_fields(socs: Sequence[SoCSpec]) -> Dict[str, np.ndarray]:
    """Tabulate per-row SoC parameters for the plan constructor."""
    return {
        "capacity": np.stack(
            [
                _soc_column(socs, Processor.CPU, "capacity"),
                _soc_column(socs, Processor.GPU, "capacity"),
                _soc_column(socs, Processor.NPU, "capacity"),
            ],
            axis=1,
        ),
        "queue_exponent": np.stack(
            [
                _soc_column(socs, Processor.CPU, "queue_exponent"),
                _soc_column(socs, Processor.GPU, "queue_exponent"),
                _soc_column(socs, Processor.NPU, "queue_exponent"),
            ],
            axis=1,
        ),
        "nnapi_comm_ms": np.array([s.nnapi_comm_ms for s in socs]),
        "nnapi_comm_gpu_factor": np.array([s.nnapi_comm_gpu_factor for s in socs]),
        "gpu_render_saturation": np.array([s.gpu_render_saturation for s in socs]),
        "gpu_render_exponent": np.array([s.gpu_render_exponent for s in socs]),
        "gpu_render_rho_max": np.array([s.gpu_render_rho_max for s in socs]),
        "cpu_objects_per_stream": np.array(
            [s.render_cost.cpu_objects_per_stream for s in socs]
        ),
        "cpu_triangles_per_stream": np.array(
            [s.render_cost.cpu_triangles_per_stream for s in socs]
        ),
        "gpu_objects_per_stream": np.array(
            [s.render_cost.gpu_objects_per_stream for s in socs]
        ),
        "gpu_triangles_per_stream": np.array(
            [s.render_cost.gpu_triangles_per_stream for s in socs]
        ),
    }

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <name>``
    Regenerate one paper artifact (table1, fig2, fig4, fig5, fig6, fig7,
    fig8, fig9, wsweep, devices, frontier) and print it.
``tune``
    Run one HBO activation on a scenario and print the configuration it
    settles on; optionally export the run as JSON.
``fleet``
    Run a multi-session fleet against the shared edge optimizer and
    print the cold-vs-warm convergence report; optionally export the
    fleet trace and the warm-start store as JSON.
``trace``
    Run a scenario (or a fleet, with ``--fleet N``) with observability
    enabled and emit a Perfetto-loadable trace plus a metrics snapshot.
``scenario {list,run,export}``
    The replayable workload catalog: list the named fleet scenarios,
    compile-and-run one at a seed (byte-identical replay), or export its
    spec as canonical JSON.
``list``
    Show the available scenarios, tasksets, devices and experiments.
``profiles``
    Print the Table I isolation profiles for a device.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.controller import HBOConfig, HBOController
from repro.device.profiles import GALAXY_S22, PIXEL7, device_names, model_names
from repro.errors import ReproError
from repro.experiments import (
    edge as edge_exp,
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fleet as fleet_exp,
    scenarios as scenario_exp,
    sweep,
    table1,
)
from repro.models.zoo import ModelZoo
from repro.rng import derive_seed
from repro.sim.scenarios import build_system

_EXPERIMENTS = {
    "table1": lambda seed, cfg: table1.render(table1.run_table1(seed=seed)),
    "fig2": lambda seed, cfg: fig2.render(fig2.run_all(seed=seed)),
    "fig4": lambda seed, cfg: fig4.render(fig4.run_fig4(seed=seed, config=cfg)),
    "fig5": lambda seed, cfg: fig5.render(fig5.run_fig5(seed=seed, config=cfg)),
    "fig6": lambda seed, cfg: fig6.render(fig6.run_fig6(seed=seed, config=cfg)),
    "fig7": lambda seed, cfg: fig7.render(fig7.run_fig7(seed=seed, config=cfg)),
    "fig8": lambda seed, cfg: fig8.render(fig8.run_fig8(seed=seed, config=cfg)),
    "fig9": lambda seed, cfg: fig9.render(fig9.run_fig9(seed=seed, config=cfg)),
    "fleet": lambda seed, cfg: fleet_exp.render(
        fleet_exp.run_fleet_experiment(seed=seed, config=cfg)
    ),
    "wsweep": lambda seed, cfg: sweep.render_w_sweep(
        sweep.run_w_sweep(seed=seed, config=cfg)
    ),
    "devices": lambda seed, cfg: sweep.render_device_comparison(
        sweep.run_device_comparison(seed=seed, config=cfg)
    ),
    "frontier": lambda seed, cfg: sweep.render_frontier_grid(
        sweep.run_frontier_grid(seed=seed)
    ),
    "edge": lambda seed, cfg: edge_exp.render(
        edge_exp.run_edge_experiment(seed=seed)
    ),
    "saturation": lambda seed, cfg: edge_exp.render_saturation(
        edge_exp.run_saturation_study(seed=seed, config=cfg)
    ),
    "scenarios": lambda seed, cfg: scenario_exp.render(
        scenario_exp.run_scenario_sweep(seed=seed, config=cfg)
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HBO reproduction (ICDCS 2024): experiments and tuning.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--seed", type=int, default=2024)
    exp.add_argument("--iterations", type=int, default=15,
                     help="BO-guided iterations per activation")
    exp.add_argument("--initial", type=int, default=5,
                     help="random initialization points")

    tune = sub.add_parser("tune", help="run one HBO activation")
    tune.add_argument("--scenario", choices=("SC1", "SC2"), default="SC1")
    tune.add_argument("--taskset", choices=("CF1", "CF2"), default="CF1")
    tune.add_argument("--device", choices=device_names(), default=PIXEL7)
    tune.add_argument("--weight", type=float, default=2.5, help="Eq. 3 weight w")
    tune.add_argument("--seed", type=int, default=2024)
    tune.add_argument("--iterations", type=int, default=15)
    tune.add_argument("--initial", type=int, default=5)
    tune.add_argument("--edge", action="store_true",
                      help="enable edge offloading (EDGE as a 4th resource)")
    tune.add_argument("--gp-tier", choices=("exact", "sparse"), default="exact",
                      help="GP surrogate tier: exact O(n^3) refits, or a "
                           "budgeted sparse tier past --gp-threshold "
                           "(docs/optimizer.md)")
    tune.add_argument("--gp-threshold", type=int, metavar="N", default=64,
                      help="sparse-tier switch point n* and support budget")
    tune.add_argument("--export", metavar="PATH", default=None,
                      help="write the full run as JSON")

    fleet = sub.add_parser(
        "fleet", help="run a multi-session fleet with warm starting"
    )
    fleet.add_argument("--sessions", type=int, default=16,
                       help="number of concurrent sessions")
    fleet.add_argument("--seed", type=int, default=2024)
    fleet.add_argument("--iterations", type=int, default=15,
                       help="BO-guided iterations per session")
    fleet.add_argument("--initial", type=int, default=5,
                       help="random initialization points per session")
    fleet.add_argument("--cold", action="store_true",
                       help="disable cross-session warm starting")
    fleet.add_argument("--edge", action="store_true",
                       help="offload to one shared edge server all "
                            "sessions contend on")
    fleet.add_argument("--edge-servers", type=int, metavar="N", default=1,
                       help="offload through an N-server edge topology "
                            "with placement and admission control "
                            "(N=1 with --edge keeps the legacy singleton)")
    fleet.add_argument("--placement",
                       choices=("nearest", "least-loaded", "price-aware"),
                       default="price-aware",
                       help="topology placement policy (with --edge-servers)")
    fleet.add_argument("--gp-tier", choices=("exact", "sparse"), default="exact",
                       help="GP surrogate tier for every session: exact "
                            "O(n^3) refits, or a budgeted sparse tier past "
                            "--gp-threshold (docs/optimizer.md)")
    fleet.add_argument("--gp-threshold", type=int, metavar="N", default=64,
                       help="sparse-tier switch point n* and support budget")
    fleet.add_argument("--shards", type=int, metavar="N", default=1,
                       help="step the fleet in N parallel worker processes "
                            "(contiguous spec cohorts; output is "
                            "byte-identical to --shards 1 at the same seed)")
    fleet.add_argument("--export", metavar="PATH", default=None,
                       help="write the fleet trace as JSON")
    fleet.add_argument("--store", metavar="PATH", default=None,
                       help="write the warm-start store as JSON")

    trace = sub.add_parser(
        "trace", help="run with tracing on; emit trace + metrics snapshot"
    )
    trace.add_argument("--scenario", choices=("SC1", "SC2"), default="SC1")
    trace.add_argument("--taskset", choices=("CF1", "CF2"), default="CF1")
    trace.add_argument("--device", choices=device_names(), default=PIXEL7)
    trace.add_argument("--fleet", type=int, metavar="N", default=0,
                       help="trace an N-session fleet instead of one scenario")
    trace.add_argument("--seed", type=int, default=2024)
    trace.add_argument("--iterations", type=int, default=15)
    trace.add_argument("--initial", type=int, default=5)
    trace.add_argument("--duration", dest="duration_s", type=float, default=60.0,
                       help="monitored session length in simulated seconds")
    trace.add_argument("--wall", action="store_true",
                       help="also capture wall-clock span durations "
                            "(non-reproducible; excluded by default)")
    trace.add_argument("--out", metavar="PATH", default="trace.json",
                       help="trace output (Chrome trace-event JSON)")
    trace.add_argument("--metrics", metavar="PATH", default=None,
                       help="also write the metrics snapshot as JSON")

    scen = sub.add_parser(
        "scenario", help="seeded, replayable fleet workloads from the catalog"
    )
    scen_sub = scen.add_subparsers(dest="scenario_command", required=True)

    scen_sub.add_parser("list", help="show the catalog entries")

    scen_run = scen_sub.add_parser(
        "run", help="compile and run one catalog scenario"
    )
    scen_run.add_argument("name", help="catalog entry (see `scenario list`)")
    scen_run.add_argument("--seed", type=int, default=2024)
    scen_run.add_argument("--iterations", type=int, default=15,
                          help="BO-guided iterations per session")
    scen_run.add_argument("--initial", type=int, default=5,
                          help="random initialization points per session")
    scen_run.add_argument("--sessions", type=int, metavar="N", default=None,
                          help="override the scenario's population")
    scen_run.add_argument("--mode",
                          choices=("device", "legacy-edge", "topology"),
                          default=None,
                          help="re-serve the scenario through another mode")
    scen_run.add_argument("--export", metavar="PATH", default=None,
                          help="write the replay artifact (canonical JSON; "
                               "byte-identical across runs at one seed)")

    scen_export = scen_sub.add_parser(
        "export", help="print a scenario spec as canonical JSON"
    )
    scen_export.add_argument("name", help="catalog entry")
    scen_export.add_argument("--out", metavar="PATH", default=None,
                             help="write to a file instead of stdout")

    sub.add_parser("list", help="show scenarios, devices and experiments")

    prof = sub.add_parser("profiles", help="print Table I for a device")
    prof.add_argument("--device", choices=device_names(), default=PIXEL7)

    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = HBOConfig(n_initial=args.initial, n_iterations=args.iterations)
    print(_EXPERIMENTS[args.name](args.seed, config))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    config = HBOConfig(
        w=args.weight,
        n_initial=args.initial,
        n_iterations=args.iterations,
        gp_tier=args.gp_tier,
        gp_sparse_threshold=args.gp_threshold,
    )
    edge_runtime = None
    if args.edge:
        from repro.edge.runtime import build_edge_runtime

        edge_runtime = build_edge_runtime(
            seed=derive_seed(args.seed, "edge-link"), session_id="tune"
        )
    system = build_system(
        args.scenario,
        args.taskset,
        device=args.device,
        seed=derive_seed(args.seed, args.scenario, args.taskset),
        edge=edge_runtime,
    )
    before = system.measure()
    controller = HBOController(system, config, seed=args.seed)
    result = controller.activate()
    after = result.final_measurement

    print(f"{args.scenario}-{args.taskset} on {args.device}, w={args.weight}")
    print(f"before: eps={before.epsilon:.3f} Q={before.quality:.3f} "
          f"B={before.reward(args.weight):+.3f}")
    print(f"after:  eps={after.epsilon:.3f} Q={after.quality:.3f} "
          f"B={after.reward(args.weight):+.3f}")
    print(f"triangle ratio x = {result.best.triangle_ratio:.2f}")
    for task_id, resource in sorted(result.best.allocation.items()):
        print(f"  {task_id:<22s} -> {resource}")

    if args.export:
        from repro.sim.export import run_result_to_dict, save_json

        save_json(run_result_to_dict(result), args.export)
        print(f"run exported to {args.export}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    config = HBOConfig(
        n_initial=args.initial,
        n_iterations=args.iterations,
        gp_tier=args.gp_tier,
        gp_sparse_threshold=args.gp_threshold,
    )
    edge_config = None
    topology = None
    if args.edge_servers < 1:
        raise SystemExit("--edge-servers must be >= 1")
    if args.edge_servers > 1:
        from repro.edge.topology import default_topology

        topology = default_topology(args.edge_servers)
    elif args.edge:
        # The legacy singleton path: byte-identical to PR 5 output.
        from repro.edge.runtime import EdgeConfig

        edge_config = EdgeConfig()
    experiment = fleet_exp.run_fleet_experiment(
        seed=args.seed,
        config=config,
        n_sessions=args.sessions,
        warm_start=not args.cold,
        edge=edge_config,
        topology=topology,
        placement=args.placement,
        shards=args.shards,
    )
    print(fleet_exp.render(experiment))
    if args.export:
        from repro.fleet.export import fleet_result_to_dict
        from repro.sim.export import save_json

        save_json(fleet_result_to_dict(experiment.result), args.export)
        print(f"fleet trace exported to {args.export}")
    if args.store:
        experiment.store.save(args.store)
        print(f"warm-start store exported to {args.store}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        instrumented,
        load_trace_json,
        validate_events,
        write_metrics_json,
        write_trace_json,
    )

    config = HBOConfig(n_initial=args.initial, n_iterations=args.iterations)
    tracer = Tracer(capture_wall=args.wall)
    metrics = MetricsRegistry()

    if args.fleet > 0:
        from repro.fleet.scheduler import FleetConfig, FleetScheduler

        specs = fleet_exp.default_fleet_specs(args.fleet, config, seed=args.seed)
        scheduler = FleetScheduler(
            specs,
            seed=derive_seed(args.seed, "fleet"),
            config=FleetConfig(hbo=config),
        )
        tracer.clock = scheduler.clock
        with instrumented(tracer, metrics):
            result = scheduler.run()
        print(f"fleet: {args.fleet} sessions drained in {result.ticks} ticks")
    else:
        from repro.core.activation import EventBasedPolicy
        from repro.sim.engine import MonitoringEngine

        system = build_system(
            args.scenario,
            args.taskset,
            device=args.device,
            seed=derive_seed(args.seed, args.scenario, args.taskset),
        )
        controller = HBOController(system, config, seed=args.seed)
        engine = MonitoringEngine(controller, EventBasedPolicy())
        tracer.clock = engine.clock
        with instrumented(tracer, metrics):
            report = engine.run([], duration_s=args.duration_s)
        print(
            f"{args.scenario}-{args.taskset} on {args.device}: "
            f"{report.n_activations} activation(s), "
            f"final B={report.final_reward:+.3f}"
        )

    # The trace-smoke contract: the emitted file must be non-empty,
    # schema-valid, and reload as trace events.
    events = write_trace_json(tracer, args.out, include_wall=args.wall)
    reloaded = load_trace_json(args.out)
    validate_events(reloaded)
    if not reloaded or reloaded != events:
        print("error: exported trace is empty or does not round-trip",
              file=sys.stderr)
        return 1
    snapshot = metrics.snapshot()
    print(f"trace: {len(events)} spans -> {args.out} "
          f"(load at https://ui.perfetto.dev or chrome://tracing)")
    print(f"metrics: {len(snapshot['counters'])} counters, "
          f"{len(snapshot['gauges'])} gauges, "
          f"{len(snapshot['histograms'])} histograms")
    if args.metrics:
        write_metrics_json(metrics, args.metrics)
        print(f"metrics snapshot -> {args.metrics}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        dump_spec,
        get_scenario,
        render_run,
        run_scenario,
        scenario_names,
    )

    if args.scenario_command == "list":
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:<20} {spec.serving.mode:<12} "
                  f"{spec.n_sessions:>3} sessions  {spec.description}")
        return 0
    if args.scenario_command == "export":
        text = dump_spec(get_scenario(args.name))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"scenario spec exported to {args.out}")
        else:
            print(text, end="")
        return 0
    # run
    config = HBOConfig(n_initial=args.initial, n_iterations=args.iterations)
    run = run_scenario(
        args.name,
        seed=args.seed,
        hbo=config,
        n_sessions=args.sessions,
        mode=args.mode,
    )
    print(render_run(run), end="")
    if args.export:
        from repro.scenarios import export_json

        with open(args.export, "w", encoding="utf-8") as fh:
            fh.write(export_json(run))
        print(f"replay artifact exported to {args.export}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("scenarios : SC1 (heavy objects), SC2 (light objects)")
    print("tasksets  : CF1 (6 AI tasks), CF2 (3 AI tasks)")
    print("devices   : " + ", ".join(device_names()))
    print("experiments: " + ", ".join(sorted(_EXPERIMENTS)))
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    zoo = ModelZoo(args.device)
    print(f"Table I — {args.device}")
    for model in model_names(args.device):
        profile = zoo.profile(model)
        cells = []
        for res_name in ("gpu", "nnapi", "cpu"):
            from repro.device.resources import resource_from_name

            resource = resource_from_name(res_name)
            cells.append(
                f"{res_name}="
                + (f"{profile.latency(resource):.1f}ms"
                   if profile.supports(resource) else "NA")
            )
        print(f"  {model:<22s} {' '.join(cells)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "tune": _cmd_tune,
        "fleet": _cmd_fleet,
        "trace": _cmd_trace,
        "scenario": _cmd_scenario,
        "list": _cmd_list,
        "profiles": _cmd_profiles,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

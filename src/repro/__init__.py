"""HBO: joint AI task allocation and virtual object quality manipulation
for improved MAR app performance.

A full reproduction of the ICDCS 2024 paper as a Python library. The
paper's contribution — a Bayesian-optimization controller (HBO) that
jointly picks per-AI-task compute allocations and the total virtual-object
triangle budget — lives in :mod:`repro.core`; everything it runs on is
built here too:

- :mod:`repro.bo` — Gaussian-process Bayesian optimization from scratch
  (Matérn-5/2 kernel, Expected Improvement, simplex-constrained space).
- :mod:`repro.device` — a heterogeneous mobile-SoC contention simulator
  calibrated to the paper's Table I (Pixel 7, Galaxy S22) plus two
  scaled mid/low tiers (Pixel 6a, Galaxy A54).
- :mod:`repro.models` — the AI model zoo and the CF1/CF2 tasksets.
- :mod:`repro.ar` — meshes, decimation, the eAR quality model (Eq. 1/2),
  the SC1/SC2 object catalogs, rendering load, and the TD heuristic.
- :mod:`repro.baselines` — SMQ, SML, BNT, AllN.
- :mod:`repro.sim` — scripted sessions and the §IV-E monitoring loop.
- :mod:`repro.fleet` — multi-session fleet serving with a shared edge
  optimizer, batched GP proposals, and cross-session warm starting.
- :mod:`repro.scenarios` — seeded workload generators and a replayable
  catalog of named fleet scenarios (name + seed → identical trace).
- :mod:`repro.obs` — observability: deterministic sim-time tracing,
  a metrics registry, and Perfetto-loadable trace export.
- :mod:`repro.experiments` — a driver per paper table/figure.
- :mod:`repro.userstudy` — the simulated §V-E rater panel.

Quickstart::

    from repro import HBOConfig, HBOController, build_system

    system = build_system("SC1", "CF1", seed=7)
    controller = HBOController(system, HBOConfig(w=2.5), seed=7)
    result = controller.activate()
    best = result.best
    print(best.allocation, best.triangle_ratio, best.measurement.quality)
"""

from repro.ar.objects import VirtualObject, catalog_sc1, catalog_sc2
from repro.ar.scene import Scene
from repro.baselines import (
    AllNNAPIBaseline,
    BayesianNoTriangleBaseline,
    StaticMatchLatencyBaseline,
    StaticMatchQualityBaseline,
)
from repro.bo import BayesianOptimizer, ExpectedImprovement, GaussianProcess, HBOSpace, Matern
from repro.core import (
    EventBasedPolicy,
    HBOConfig,
    HBOController,
    HBORunResult,
    LookupAwareController,
    LookupTable,
    MARSystem,
    Measurement,
    NetworkLink,
    PeriodicPolicy,
)
from repro.device import DeviceSimulator, Resource, galaxy_s22_soc, pixel7_soc
from repro.errors import ReproError
from repro.fleet import (
    FleetConfig,
    FleetResult,
    FleetScheduler,
    SessionSpec,
    SharedConfigStore,
    run_fleet,
)
from repro.models import ModelZoo, TaskSet, taskset_cf1, taskset_cf2
from repro.scenarios import (
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.obs import MetricsRegistry, Tracer, instrumented
from repro.sim import MonitoringEngine
from repro.sim.scenarios import build_system, fig8_event_script
from repro.units import Ms, Seconds, ms_to_s, s_to_ms
from repro.userstudy import RaterPanel

__version__ = "1.0.0"

__all__ = [
    "AllNNAPIBaseline",
    "BayesianNoTriangleBaseline",
    "BayesianOptimizer",
    "DeviceSimulator",
    "EventBasedPolicy",
    "ExpectedImprovement",
    "FleetConfig",
    "FleetResult",
    "FleetScheduler",
    "GaussianProcess",
    "HBOConfig",
    "HBOController",
    "HBORunResult",
    "HBOSpace",
    "LookupAwareController",
    "LookupTable",
    "MARSystem",
    "Matern",
    "Measurement",
    "MetricsRegistry",
    "ModelZoo",
    "Ms",
    "NetworkLink",
    "MonitoringEngine",
    "PeriodicPolicy",
    "RaterPanel",
    "ReproError",
    "Resource",
    "Scene",
    "ScenarioSpec",
    "Seconds",
    "SessionSpec",
    "SharedConfigStore",
    "StaticMatchLatencyBaseline",
    "StaticMatchQualityBaseline",
    "TaskSet",
    "Tracer",
    "VirtualObject",
    "__version__",
    "build_system",
    "catalog_sc1",
    "catalog_sc2",
    "compile_scenario",
    "fig8_event_script",
    "galaxy_s22_soc",
    "get_scenario",
    "instrumented",
    "ms_to_s",
    "pixel7_soc",
    "run_fleet",
    "run_scenario",
    "s_to_ms",
    "scenario_names",
    "taskset_cf1",
    "taskset_cf2",
]

"""Structured tracing keyed on the simulation clock.

A :class:`Tracer` records hierarchical :class:`SpanRecord` trees over the
deterministic :class:`~repro.sim.clock.SimClock`: span open/close times
are *simulated* seconds, so two runs from the same seed produce
bit-identical traces. Because many spans open and close within one
control period (the clock only advances between periods), every span
also carries a monotonic sequence number pair that totally orders the
tree; the Chrome-trace exporter (:mod:`repro.obs.export`) uses it to
break sim-time ties so nesting renders correctly in Perfetto.

Wall-clock capture is *opt-in and isolated*: with ``capture_wall=True``
each span additionally records its host-clock duration (via the
sanctioned :func:`repro.sim.clock.wall_now_ms` shim — the only RL001
escape hatch), stored in a single ``wall_ms`` field that every exporter
can exclude. Reproducibility assertions must always exclude it.

When tracing is off, the module-level :data:`NULL_TRACER` /
:data:`NULL_SPAN` singletons make every instrumentation site a no-op:
``NULL_TRACER.span(...)`` returns the same prebuilt object with empty
``__enter__``/``__exit__``, so the hot paths pay a few function calls
and zero allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Type

from repro.errors import ObservabilityError
from repro.units import Ms, Seconds

if TYPE_CHECKING:  # pragma: no cover - avoids a repro.sim import cycle
    from repro.sim.clock import SimClock


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named interval of simulated time.

    ``seq_open``/``seq_close`` come from a tracer-wide counter bumped at
    every span boundary; they totally order the span tree even when
    ``start_s == end_s`` (common — the sim clock advances only between
    control periods). ``wall_ms`` is the host-clock duration when the
    tracer captured it, ``None`` otherwise; it is the *only*
    non-deterministic field.
    """

    span_id: int
    parent_id: Optional[int]
    depth: int
    name: str
    category: str
    start_s: Seconds
    end_s: Seconds
    seq_open: int
    seq_close: int
    args: Tuple[Tuple[str, Any], ...] = ()
    wall_ms: Optional[Ms] = None

    @property
    def duration_s(self) -> Seconds:
        return self.end_s - self.start_s

    def to_dict(self, include_wall: bool = True) -> Dict[str, Any]:
        """Plain-JSON form; ``include_wall=False`` drops the only
        non-reproducible field (for determinism comparisons)."""
        data: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "seq_open": self.seq_open,
            "seq_close": self.seq_close,
            "args": dict(self.args),
        }
        if include_wall and self.wall_ms is not None:
            data["wall_ms"] = self.wall_ms
        return data


class Span:
    """An *open* span: a context manager handed out by :meth:`Tracer.span`.

    Extra context discovered mid-span attaches with :meth:`set`; the
    record is appended to the tracer on ``__exit__`` (in close order, so
    the span list is a post-order traversal of the tree).
    """

    __slots__ = (
        "_tracer",
        "span_id",
        "parent_id",
        "depth",
        "name",
        "category",
        "start_s",
        "seq_open",
        "_args",
        "_wall_start_ms",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        name: str,
        category: str,
        start_s: Seconds,
        seq_open: int,
        args: Dict[str, Any],
        wall_start_ms: Optional[Ms],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.name = name
        self.category = category
        self.start_s = start_s
        self.seq_open = seq_open
        self._args = args
        self._wall_start_ms = wall_start_ms

    def set(self, **args: Any) -> "Span":
        """Attach key/value context to the span while it is open."""
        self._args.update(args)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self._tracer._close(self)
        return False


class NullSpan:
    """The do-nothing span: a shared singleton for disabled tracing."""

    __slots__ = ()

    def set(self, **args: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: Shared no-op span; every disabled instrumentation site gets this object.
NULL_SPAN = NullSpan()


class NullTracer:
    """The do-nothing tracer installed when observability is disabled."""

    __slots__ = ()

    enabled = False
    capture_wall = False
    #: Always empty: a NullTracer never records anything.
    spans: Tuple[SpanRecord, ...] = ()

    def span(self, name: str, category: str = "", **args: Any) -> NullSpan:
        return NULL_SPAN


#: Shared no-op tracer (see :mod:`repro.obs.runtime`).
NULL_TRACER = NullTracer()


class Tracer:
    """Records a deterministic span tree over a simulation clock.

    Parameters
    ----------
    clock:
        The :class:`~repro.sim.clock.SimClock` whose ``now_s`` stamps
        span boundaries. Defaults to a fresh clock at 0 s; point it at
        the engine's or fleet scheduler's clock to get meaningful times
        (assign :attr:`clock` after constructing the run if needed).
    capture_wall:
        Also record each span's host-clock duration (``wall_ms``). Off
        by default because wall times are not reproducible; exporters
        can exclude them even when captured.
    """

    enabled = True

    def __init__(
        self, clock: Optional["SimClock"] = None, capture_wall: bool = False
    ) -> None:
        if clock is None:
            from repro.sim.clock import SimClock

            clock = SimClock()
        self.clock = clock
        self.capture_wall = bool(capture_wall)
        #: Closed spans, in close order (post-order over the span tree).
        self.spans: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._seq = 0
        if capture_wall:
            from repro.sim.clock import wall_now_ms

            self._wall_now_ms = wall_now_ms
        else:
            self._wall_now_ms = None

    # ----------------------------------------------------------------- API

    @property
    def depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def span(self, name: str, category: str = "", **args: Any) -> Span:
        """Open a child span of the innermost open span (context manager)."""
        if not name:
            raise ObservabilityError("span name must be non-empty")
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            span_id=self._seq,  # ids share the seq counter: unique + ordered
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            name=name,
            category=category,
            start_s=self.clock.now_s,
            seq_open=self._seq,
            args=dict(args),
            wall_start_ms=(
                self._wall_now_ms() if self._wall_now_ms is not None else None
            ),
        )
        self._seq += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order; close the innermost "
                "open span first (use `with tracer.span(...)` blocks)"
            )
        self._stack.pop()
        wall_ms: Optional[Ms] = None
        if span._wall_start_ms is not None and self._wall_now_ms is not None:
            wall_ms = self._wall_now_ms() - span._wall_start_ms
        self.spans.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                depth=span.depth,
                name=span.name,
                category=span.category,
                start_s=span.start_s,
                end_s=self.clock.now_s,
                seq_open=span.seq_open,
                seq_close=self._seq,
                args=tuple(sorted(span._args.items())),
                wall_ms=wall_ms,
            )
        )
        self._seq += 1

    # ----------------------------------------------------------- inspection

    def spans_by_start(self) -> List[SpanRecord]:
        """Closed spans in open order (pre-order over the span tree)."""
        return sorted(self.spans, key=lambda s: s.seq_open)

    def children_of(self, span_id: Optional[int]) -> List[SpanRecord]:
        """Direct children of ``span_id`` (``None`` for root spans)."""
        return [s for s in self.spans_by_start() if s.parent_id == span_id]

    def reset(self) -> None:
        """Drop all recorded spans (open spans must be closed first)."""
        if self._stack:
            raise ObservabilityError(
                f"cannot reset with {len(self._stack)} span(s) still open"
            )
        self.spans.clear()
        self._seq = 0

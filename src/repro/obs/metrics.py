"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns labeled metric families. Each family is
addressed by name plus a sorted label set, so
``registry.counter("store_lookups", scope="model")`` always returns the
same :class:`Counter` object. Snapshots (:meth:`MetricsRegistry.snapshot`)
are plain nested dicts with deterministically sorted keys — safe to JSON-
dump and diff across runs; :func:`snapshot_delta` subtracts two snapshots
for before/after accounting.

Metric names follow the repo-wide unit convention enforced by reprolint
rule RL004: any name that talks about time must carry a ``_ms``/``_s``
suffix (``device_task_latency_ms``, not ``device_task_latency``). The
registry validates this at creation time so a bad name fails fast instead
of shipping an ambiguous series.

When observability is disabled, :data:`NULL_METRICS` stands in for the
registry: its ``counter``/``gauge``/``histogram`` return shared no-op
singletons, so instrumentation sites cost a method call and no
allocation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Default histogram bucket upper edges — a generic 1-2.5-5 ladder wide
#: enough for both millisecond latencies and payload byte counts.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
)

#: Temporal words that require a unit suffix in metric names (mirrors the
#: RL004 vocabulary for code identifiers).
_TEMPORAL_WORDS = (
    "latency",
    "duration",
    "elapsed",
    "time",
    "delay",
    "interval",
    "period",
    "timeout",
    "deadline",
)

_UNIT_SUFFIXES = ("_ms", "_s", "_us", "_ns")


def _validate_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ObservabilityError(
            f"metric name {name!r} must be non-empty snake_case "
            "(letters, digits, underscores)"
        )
    lowered = name.lower()
    if any(word in lowered for word in _TEMPORAL_WORDS):
        if not lowered.endswith(_UNIT_SUFFIXES):
            raise ObservabilityError(
                f"temporal metric name {name!r} needs a unit suffix "
                f"({'/'.join(_UNIT_SUFFIXES)}) — see RL004"
            )


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter increments must be >= 0, got {amount}"
            )
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    Buckets follow Prometheus "le" semantics: a sample lands in the first
    bucket whose upper edge is >= the value; samples beyond the last edge
    go to a +inf overflow bucket. Quantiles interpolate linearly inside
    the containing bucket (the overflow bucket reports the last finite
    edge, clamped by the observed max).
    """

    __slots__ = ("edges", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, edges: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not edges or list(edges) != sorted(set(edges)):
            raise ObservabilityError(
                f"histogram edges must be non-empty, strictly increasing; "
                f"got {tuple(edges)}"
            )
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.bucket_counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile (0 <= q <= 1) from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.edges[i - 1] if i > 0 else 0.0
                hi = self.edges[i] if i < len(self.edges) else self.edges[-1]
                if self.min is not None:
                    lo = max(lo, self.min) if i == 0 else lo
                if self.max is not None:
                    hi = min(hi, self.max) if hi >= self.max else hi
                if hi < lo:
                    hi = lo
                fraction = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.max  # pragma: no cover - defensive; rank <= count

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                **{
                    repr(edge): self.bucket_counts[i]
                    for i, edge in enumerate(self.edges)
                },
                "+inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Owns labeled counter/gauge/histogram families."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = _series_key(name, labels)
        found = self._counters.get(key)
        if found is None:
            _validate_metric_name(name)
            found = self._counters[key] = Counter()
        return found

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _series_key(name, labels)
        found = self._gauges.get(key)
        if found is None:
            _validate_metric_name(name)
            found = self._gauges[key] = Gauge()
        return found

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = _series_key(name, labels)
        found = self._histograms.get(key)
        if found is None:
            _validate_metric_name(name)
            found = self._histograms[key] = Histogram(edges)
        elif tuple(float(e) for e in edges) != found.edges:
            raise ObservabilityError(
                f"histogram {key!r} already registered with edges "
                f"{found.edges}; cannot re-register with {tuple(edges)}"
            )
        return found

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot of every series."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary()
                for k in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Drop every registered series."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def snapshot_delta(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> Dict[str, Any]:
    """Subtract two :meth:`MetricsRegistry.snapshot` dicts.

    Counters subtract; gauges report the ``after`` value; histograms
    subtract counts/sums (quantiles are omitted — they do not compose).
    Series absent from ``before`` are treated as zero.
    """
    before_counters = before.get("counters", {})
    after_counters = after.get("counters", {})
    before_hists = before.get("histograms", {})
    after_hists = after.get("histograms", {})
    delta_hists: Dict[str, Any] = {}
    for key in sorted(after_hists):
        prev = before_hists.get(key, {})
        cur = after_hists[key]
        delta_hists[key] = {
            "count": cur["count"] - prev.get("count", 0),
            "sum": cur["sum"] - prev.get("sum", 0.0),
        }
    return {
        "counters": {
            k: after_counters[k] - before_counters.get(k, 0.0)
            for k in sorted(after_counters)
        },
        "gauges": dict(after.get("gauges", {})),
        "histograms": delta_hists,
    }


class _NullCounter:
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> Optional[float]:
        return None

    def summary(self) -> Dict[str, Any]:
        return {"count": 0, "sum": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """Do-nothing registry installed when observability is disabled."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: Shared no-op registry (see :mod:`repro.obs.runtime`).
NULL_METRICS = NullMetrics()

"""Ambient instrumentation: the process-wide tracer/metrics pair.

Hot paths must not take a tracer parameter through every constructor, so
instrumentation goes through a module-level :class:`Instrumentation`
holder. By default it holds the null tracer and null registry — every
probe is a no-op costing a couple of attribute lookups. A harness (the
``repro trace`` CLI, a test) enables collection either explicitly::

    tracer = Tracer(clock=engine.clock)
    metrics = MetricsRegistry()
    install(tracer, metrics)
    try:
        engine.run(...)
    finally:
        uninstall()

or with the :func:`instrumented` context manager, which restores whatever
was active before (so nesting and test isolation both work).

Instrumented modules import this module as ``obs`` and write::

    from repro.obs import runtime as obs
    ...
    with obs.span("bo.gp_fit", n_obs=len(self.observations)):
        self._fit_surrogate()
    obs.counter("bo_gp_fits").inc()

Importing :mod:`repro.obs.runtime` is safe from anywhere in the library:
it only pulls in :mod:`repro.obs.tracing`/:mod:`repro.obs.metrics`, which
never import simulation code at module level (no import cycles).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence, Union

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
    NULL_METRICS,
)
from repro.obs.tracing import NullSpan, NullTracer, Span, Tracer, NULL_TRACER


class Instrumentation:
    """The (tracer, metrics) pair that probes route through."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Union[Tracer, NullTracer] = NULL_TRACER,
        metrics: Union[MetricsRegistry, NullMetrics] = NULL_METRICS,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled


_DISABLED = Instrumentation()
_current: Instrumentation = _DISABLED


def active() -> Instrumentation:
    """The currently installed instrumentation (disabled by default)."""
    return _current


def install(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[Union[MetricsRegistry, NullMetrics]] = None,
) -> Instrumentation:
    """Install a tracer and/or metrics registry process-wide.

    ``None`` means "the null implementation", not "keep the current one" —
    install is a full replacement. Returns the new active holder.
    """
    global _current
    _current = Instrumentation(
        tracer=tracer if tracer is not None else NULL_TRACER,
        metrics=metrics if metrics is not None else NULL_METRICS,
    )
    return _current


def uninstall() -> None:
    """Return to the disabled (no-op) instrumentation."""
    global _current
    _current = _DISABLED


@contextmanager
def instrumented(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[Union[MetricsRegistry, NullMetrics]] = None,
) -> Iterator[Instrumentation]:
    """Scoped :func:`install` that restores the previous instrumentation."""
    global _current
    previous = _current
    holder = install(tracer, metrics)
    try:
        yield holder
    finally:
        _current = previous


# --------------------------------------------------------------- probe API
# These four helpers are what instrumented modules call. When disabled
# they return shared singletons without allocating.


def span(name: str, category: str = "", **args: Any) -> Union[Span, NullSpan]:
    """Open a span on the ambient tracer (no-op when disabled)."""
    return _current.tracer.span(name, category, **args)


def counter(name: str, **labels: str) -> Union[Counter, _NullCounter]:
    """The ambient counter series for ``name`` + labels."""
    return _current.metrics.counter(name, **labels)


def gauge(name: str, **labels: str) -> Union[Gauge, _NullGauge]:
    """The ambient gauge series for ``name`` + labels."""
    return _current.metrics.gauge(name, **labels)


def histogram(
    name: str,
    edges: Sequence[float] = DEFAULT_BUCKETS,
    **labels: str,
) -> Union[Histogram, _NullHistogram]:
    """The ambient histogram series for ``name`` + labels."""
    return _current.metrics.histogram(name, edges, **labels)

"""Observability layer: structured tracing, metrics, and trace export.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.obs.tracing` — hierarchical spans stamped in simulated
  seconds (bit-reproducible under a fixed seed), with opt-in wall-clock
  capture isolated to a single excludable field.
* :mod:`repro.obs.metrics` — labeled counters/gauges/fixed-bucket
  histograms with deterministic dict/JSON snapshots.
* :mod:`repro.obs.export` — Chrome trace-event (Perfetto-loadable) JSON
  output plus loaders and schema validation.

:mod:`repro.obs.runtime` holds the ambient (process-wide) tracer/metrics
pair that the library's profiling hooks route through; it defaults to
no-op singletons so instrumentation costs nothing unless a harness calls
:func:`~repro.obs.runtime.install` / :func:`~repro.obs.runtime.instrumented`.
"""

from repro.obs.export import (
    load_trace_json,
    trace_events,
    validate_events,
    write_metrics_json,
    write_trace_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
    snapshot_delta,
)
from repro.obs.runtime import (
    Instrumentation,
    active,
    install,
    instrumented,
    uninstall,
)
from repro.obs.tracing import (
    NullSpan,
    NullTracer,
    NULL_SPAN,
    NULL_TRACER,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "Tracer",
    "active",
    "install",
    "instrumented",
    "load_trace_json",
    "snapshot_delta",
    "trace_events",
    "uninstall",
    "validate_events",
    "write_metrics_json",
    "write_trace_json",
]

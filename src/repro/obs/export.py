"""Trace export in Chrome trace-event format (Perfetto-compatible).

The on-disk layout is line-oriented strict JSON: the file is a JSON
array with one event object per line, so it is simultaneously

* valid input for ``chrome://tracing`` and https://ui.perfetto.dev
  (which accept a bare array of trace events), and
* greppable/streamable one event per line (the "JSONL" requirement).

Timestamps: Chrome traces use integer microseconds. Spans are stamped in
*simulated* seconds and the sim clock only advances between control
periods, so many spans tie on ``ts``. To keep parent/child nesting
unambiguous for viewers, the exported tick is
``round(start_s * 1e6) + seq_open`` (and analogously for the end) — the
per-tracer sequence counter breaks every tie while preserving tree
containment, and it is deterministic, so exported traces stay
bit-identical across same-seed runs. The exact simulated bounds ride
along in each event's ``args`` (``sim_start_s``/``sim_end_s``).

Wall-clock durations (captured only when the tracer opted in) appear as
``args.wall_ms`` and are dropped entirely with ``include_wall=False`` —
reproducibility comparisons must use that mode.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracing import NullTracer, Tracer

_US_PER_S = 1_000_000

#: Keys required of every exported trace event (Chrome trace-event "X").
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def _event_tick(t_s: float, seq: int) -> int:
    return round(t_s * _US_PER_S) + seq


def trace_events(
    tracer: Union[Tracer, NullTracer], include_wall: bool = True
) -> List[Dict[str, Any]]:
    """Closed spans as Chrome complete ("X") events, in open order."""
    events: List[Dict[str, Any]] = []
    spans = sorted(tracer.spans, key=lambda s: s.seq_open)
    for record in spans:
        ts = _event_tick(record.start_s, record.seq_open)
        end = _event_tick(record.end_s, record.seq_close)
        args: Dict[str, Any] = {
            "sim_start_s": record.start_s,
            "sim_end_s": record.end_s,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "depth": record.depth,
        }
        args.update(dict(record.args))
        if include_wall and record.wall_ms is not None:
            args["wall_ms"] = record.wall_ms
        events.append(
            {
                "name": record.name,
                "cat": record.category or "repro",
                "ph": "X",
                "ts": ts,
                "dur": max(end - ts, 0),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    return events


def write_trace_json(
    tracer: Union[Tracer, NullTracer],
    path: str,
    include_wall: bool = True,
) -> List[Dict[str, Any]]:
    """Write the trace to ``path`` (JSON array, one event per line).

    Returns the exported event list.
    """
    events = trace_events(tracer, include_wall=include_wall)
    lines = ["["]
    for i, event in enumerate(events):
        comma = "," if i < len(events) - 1 else ""
        lines.append(json.dumps(event, sort_keys=True) + comma)
    lines.append("]")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return events


def load_trace_json(path: str) -> List[Dict[str, Any]]:
    """Load a trace file written by :func:`write_trace_json`.

    Tolerates the three common trace-event layouts: a bare JSON array,
    an object with a ``traceEvents`` key, and one-object-per-line JSONL.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        events: List[Dict[str, Any]] = []
        for line_no, line in enumerate(text.splitlines(), start=1):
            line = line.strip().rstrip(",")
            if not line or line in "[]":
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{line_no} is neither a trace-event object nor "
                    f"part of a JSON array: {exc}"
                ) from exc
        return events
    if isinstance(data, dict):
        data = data.get("traceEvents")
    if not isinstance(data, list):
        raise ObservabilityError(
            f"{path} does not contain a trace-event array (expected a JSON "
            "array or an object with a 'traceEvents' key)"
        )
    return data


def validate_events(events: Sequence[Dict[str, Any]]) -> None:
    """Raise :class:`ObservabilityError` unless every event is a
    well-formed Chrome complete event."""
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError(f"event {i} is not an object: {event!r}")
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            raise ObservabilityError(
                f"event {i} ({event.get('name', '?')!r}) is missing required "
                f"trace-event keys {missing}"
            )
        if event["ph"] != "X":
            raise ObservabilityError(
                f"event {i} has phase {event['ph']!r}; this exporter only "
                "emits complete ('X') events"
            )
        if not isinstance(event["ts"], int) or not isinstance(
            event["dur"], int
        ):
            raise ObservabilityError(
                f"event {i} ts/dur must be integer microseconds, got "
                f"ts={event['ts']!r} dur={event['dur']!r}"
            )
        if event["dur"] < 0:
            raise ObservabilityError(f"event {i} has negative dur")


def write_metrics_json(
    metrics: Union[MetricsRegistry, NullMetrics], path: str
) -> Dict[str, Any]:
    """Write a metrics snapshot to ``path`` as pretty JSON; returns it."""
    snapshot = metrics.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return snapshot

"""Measure GP fit time vs dataset size for both surrogate tiers →
BENCH_pr8.json.

Usage: PYTHONPATH=src python tools/bench_pr8.py <output-json>

At each n in the sweep the script times (a) a full exact
``GaussianProcess.fit`` — the O(n³) refit every guided BO iteration pays
on the exact tier — and (b) a ``SparseGaussianProcess.fit`` with the
default support budget (64), whose cost is O(n log n) selection plus a
fixed O(m³) factorization. The headline is the growth ratio between the
two tiers from the smallest to the largest n: the exact tier's fit time
must grow at least 5× faster than the sparse tier's, or the script exits
non-zero (so ``make bench`` catches a broken tier).

It also re-checks the parity contract the unit tests pin: at n ≤ the
support budget the sparse tier runs the identical exact fit, so the two
posteriors must agree *bitwise* (tolerance 0.0 — see docs/optimizer.md).

Synthetic data is drawn once per n from ``repro.rng`` streams, so the
dataset (and the parity outcome) is reproducible; the timings themselves
are host-dependent and re-measured by every ``make bench``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, List

import numpy as np

from repro.bo.gp import GaussianProcess
from repro.bo.sparse import SparseGaussianProcess
from repro.rng import derive_seed, make_rng

DIM = 4
SUPPORT_BUDGET = 64
SWEEP = (32, 64, 128, 256, 512, 1024)
REPEATS = 3
MIN_GROWTH_RATIO = 5.0


def _dataset(n: int) -> "tuple[np.ndarray, np.ndarray]":
    rng = make_rng(derive_seed(2024, "bench-pr8", n))
    x = rng.uniform(size=(n, DIM))
    y = np.sin(3.0 * x[:, 0]) + 0.5 * x[:, 1] ** 2 + 0.1 * rng.normal(size=n)
    return x, y


def _time_fit(model_factory: Any, x: np.ndarray, y: np.ndarray) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        model = model_factory()
        start = time.perf_counter()
        model.fit(x, y)
        best = min(best, time.perf_counter() - start)
    return best


def run() -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []
    for n in SWEEP:
        x, y = _dataset(n)
        exact_s = _time_fit(lambda: GaussianProcess(noise=1e-3), x, y)
        sparse_s = _time_fit(
            lambda: SparseGaussianProcess(
                noise=1e-3, max_support=SUPPORT_BUDGET
            ),
            x,
            y,
        )
        rows.append(
            {
                "n": n,
                "exact_fit_ms": round(exact_s * 1e3, 4),
                "sparse_fit_ms": round(sparse_s * 1e3, 4),
                "speedup": round(exact_s / sparse_s, 2),
            }
        )

    # Parity at n ≤ the support budget: identical code path, bitwise-equal.
    x, y = _dataset(SUPPORT_BUDGET)
    q = make_rng(derive_seed(2024, "bench-pr8", "query")).uniform(
        size=(32, DIM)
    )
    exact_post = GaussianProcess(noise=1e-3).fit(x, y).predict(q)
    sparse_post = (
        SparseGaussianProcess(noise=1e-3, max_support=SUPPORT_BUDGET)
        .fit(x, y)
        .predict(q)
    )
    parity_bitwise = bool(
        np.array_equal(exact_post.mean, sparse_post.mean)
        and np.array_equal(exact_post.std, sparse_post.std)
    )

    first, last = rows[0], rows[-1]
    exact_growth = last["exact_fit_ms"] / first["exact_fit_ms"]
    sparse_growth = last["sparse_fit_ms"] / first["sparse_fit_ms"]
    growth_ratio = exact_growth / sparse_growth

    return {
        "source": "tools/bench_pr8.py (make bench)",
        "setup": {
            "dim": DIM,
            "support_budget": SUPPORT_BUDGET,
            "sweep": list(SWEEP),
            "repeats": REPEATS,
            "noise": 1e-3,
        },
        "headline": {
            "exact_growth": round(exact_growth, 2),
            "sparse_growth": round(sparse_growth, 2),
            "growth_ratio": round(growth_ratio, 2),
            "min_growth_ratio": MIN_GROWTH_RATIO,
            "speedup_at_max_n": last["speedup"],
            "parity_bitwise_at_small_n": parity_bitwise,
        },
        "fit_time_vs_n": rows,
    }


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    report = run()
    headline = report["headline"]
    if not headline["parity_bitwise_at_small_n"]:
        raise SystemExit(
            "bench_pr8: sparse tier lost bitwise parity at n <= budget"
        )
    if headline["growth_ratio"] < MIN_GROWTH_RATIO:
        raise SystemExit(
            f"bench_pr8: exact fit time grew only "
            f"{headline['growth_ratio']}x faster than sparse over the sweep "
            f"(need >= {MIN_GROWTH_RATIO}x) — the sparse tier is broken"
        )
    with open(sys.argv[1], "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {sys.argv[1]}: {json.dumps(headline)}")


if __name__ == "__main__":
    main()

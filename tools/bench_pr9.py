"""Measure the SoA fleet core: columnar vs object-per-session stepping →
BENCH_pr9.json.

Usage: PYTHONPATH=src python tools/bench_pr9.py <output-json>

Three claims from the structure-of-arrays refactor, each gated:

1. **Columnar throughput at N=1024** — one tick's pricing pass over a
   live 1024-session fleet, done the new way (ONE ``EvalPlan`` built
   straight from ``SessionTable`` columns + one batched solve) versus
   the object-per-session way (a 1-row plan + solve per session, the
   pre-refactor granularity). The columnar pass must clear ≥10×
   sessions/s or the script exits non-zero.
2. **Interactive tick rates at 10k+ sessions** — the same columnar pass
   over a 10240-session table must finish well inside one 1 s control
   period (gate: <1000 ms), and the script runs the 10240-session fleet
   END TO END to prove the scale point is real, not extrapolated.
3. **Determinism unchanged** — the legacy 16-session seed-2024
   ``repro fleet`` output must hash to the pinned pre-refactor sha, and
   a ``--shards 4`` run of the same fleet must be byte-identical to it.

Timings are host-dependent and re-measured by every ``make bench``; the
determinism checks are exact on any host.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import time
from typing import Any, Dict, List

from repro.backend import solve
from repro.core.controller import HBOConfig
from repro.device.profiles import GALAXY_S22, PIXEL7
from repro.fleet import (
    FleetConfig,
    FleetScheduler,
    SessionSpec,
    SharedConfigStore,
)

SMALL_N = 1024
BIG_N = 10240
REPEATS = 3
MIN_SPEEDUP = 10.0
MAX_TICK_MS = 1000.0  # one 1 s control period = "interactive"
#: sha256 of `repro fleet --sessions 16 --seed 2024` stdout, pinned when
#: the fleet experiment landed — the SoA core must not move it.
LEGACY_SHA = "6aeef4b7c645f4e14c63f843ff28ad50b959b2e3cc6c6588ab19b5395b320631"
BENCH_CONFIG = HBOConfig(n_initial=2, n_iterations=3)


def _specs(n: int) -> List[SessionSpec]:
    devices = (PIXEL7, GALAXY_S22)
    return [
        SessionSpec(
            session_id=f"s{i:05d}",
            device=devices[i % 2],
            scenario="SC1" if i % 2 == 0 else "SC2",
            taskset="CF1" if i % 2 == 0 else "CF2",
            arrival_s=0.0,
            placement_seed=11 + (i % 2),
        )
        for i in range(n)
    ]


def _live_scheduler(n: int) -> FleetScheduler:
    """A fleet with every session admitted and one tick stepped, so each
    table row carries real plan columns (device rates, scene loads)."""
    scheduler = FleetScheduler(
        _specs(n),
        seed=2024,
        config=FleetConfig(hbo=BENCH_CONFIG),
        store=SharedConfigStore(),
    )
    scheduler.step(0)
    return scheduler


def _time_pricing_passes(scheduler: FleetScheduler) -> Dict[str, float]:
    """Time one tick's steady-state pricing, both ways, same rows."""
    table = scheduler.table
    rows = list(table.active_indices())
    columnar = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        solve(table.build_plan(rows), exact=True)
        columnar = min(columnar, time.perf_counter() - start)
    start = time.perf_counter()
    for row in rows:
        solve(table.build_plan([row]), exact=True)
    object_per_session = time.perf_counter() - start
    return {
        "n_sessions": len(rows),
        "columnar_ms": round(columnar * 1e3, 3),
        "object_per_session_ms": round(object_per_session * 1e3, 3),
        "columnar_sessions_per_s": round(len(rows) / columnar, 1),
        "object_sessions_per_s": round(len(rows) / object_per_session, 1),
        "speedup": round(object_per_session / columnar, 1),
    }


def _fleet_cli(*extra: str) -> bytes:
    """The legacy 16-session seed-2024 fleet, exactly as the CLI runs it."""
    return subprocess.run(
        [sys.executable, "-m", "repro", "fleet", "--sessions", "16",
         "--seed", "2024", *extra],
        check=True,
        capture_output=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    ).stdout


def run() -> Dict[str, Any]:
    small = _time_pricing_passes(_live_scheduler(SMALL_N))

    big_scheduler = _live_scheduler(BIG_N)
    table = big_scheduler.table
    rows = list(table.active_indices())
    tick = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        solve(table.build_plan(rows), exact=True)
        tick = min(tick, time.perf_counter() - start)
    start = time.perf_counter()
    result = big_scheduler.run()  # finish the whole 10240-session fleet
    end_to_end_s = time.perf_counter() - start
    big = {
        "n_sessions": len(rows),
        "columnar_tick_ms": round(tick * 1e3, 3),
        "columnar_sessions_per_s": round(len(rows) / tick, 1),
        "end_to_end_remaining_s": round(end_to_end_s, 2),
        "end_to_end_ticks": result.ticks,
        "end_to_end_session_steps": result.aggregates.n_evaluations,
        "end_to_end_steps_per_s": round(
            result.aggregates.n_evaluations / end_to_end_s, 1
        ),
    }

    legacy = _fleet_cli()
    sharded = _fleet_cli("--shards", "4")
    determinism = {
        "legacy_sha_pinned": LEGACY_SHA,
        "legacy_sha_measured": hashlib.sha256(legacy).hexdigest(),
        "legacy_sha_match": hashlib.sha256(legacy).hexdigest() == LEGACY_SHA,
        "shards4_byte_identical": sharded == legacy,
    }

    return {
        "source": "tools/bench_pr9.py (make bench)",
        "setup": {
            "hbo": {"n_initial": 2, "n_iterations": 3},
            "small_n": SMALL_N,
            "big_n": BIG_N,
            "repeats": REPEATS,
        },
        "headline": {
            "speedup_vs_object_per_session": small["speedup"],
            "min_speedup": MIN_SPEEDUP,
            "tick_ms_at_10k": big["columnar_tick_ms"],
            "max_tick_ms": MAX_TICK_MS,
            "legacy_sha_match": determinism["legacy_sha_match"],
            "shards4_byte_identical": determinism["shards4_byte_identical"],
        },
        "pricing_pass_1024": small,
        "scale_10240": big,
        "determinism": determinism,
    }


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    report = run()
    headline = report["headline"]
    if headline["speedup_vs_object_per_session"] < MIN_SPEEDUP:
        raise SystemExit(
            f"bench_pr9: columnar pass is only "
            f"{headline['speedup_vs_object_per_session']}x the "
            f"object-per-session pass at N={SMALL_N} "
            f"(need >= {MIN_SPEEDUP}x) — the SoA core regressed"
        )
    if headline["tick_ms_at_10k"] >= MAX_TICK_MS:
        raise SystemExit(
            f"bench_pr9: a {BIG_N}-session tick takes "
            f"{headline['tick_ms_at_10k']} ms (need < {MAX_TICK_MS} ms "
            f"for interactive control periods)"
        )
    if not headline["legacy_sha_match"]:
        raise SystemExit(
            "bench_pr9: the 16-session seed-2024 fleet output moved off "
            "its pinned sha — the refactor broke determinism"
        )
    if not headline["shards4_byte_identical"]:
        raise SystemExit(
            "bench_pr9: --shards 4 output differs from shards=1 — the "
            "sharded merge broke byte identity"
        )
    with open(sys.argv[1], "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {sys.argv[1]}: {json.dumps(headline)}")


if __name__ == "__main__":
    main()

"""Measure the scenario engine: sweep the catalog across serving modes →
BENCH_pr10.json.

Usage: PYTHONPATH=src python tools/bench_pr10.py <output-json>

Three claims from the scenario-catalog PR, each gated:

1. **Replay** — ``compile + run`` of a catalog scenario at a fixed seed
   must export byte-identical artifacts across two fresh runs (the
   name+seed→identical-trace contract). Any drift exits non-zero.
2. **Coverage** — the sweep must complete every catalog scenario in
   ``SWEEP_SCENARIOS`` under every mode in ``SWEEP_MODES`` (≥6×2 cells),
   each cell draining its full session population to finite best costs,
   and lands per-cell p95 ε / median time-to-target in the report.
3. **Legacy parity** — compiling the ``legacy-fleet`` entry at seed 2024
   must reproduce the pre-catalog ``run_fleet_experiment`` session
   reports exactly: the catalog is a superset of the old driver, not a
   fork of it.

Timings are host-dependent and re-measured by every ``make bench``; the
replay and parity checks are exact on any host.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any, Dict

from repro.core.controller import HBOConfig
from repro.experiments.fleet import run_fleet_experiment
from repro.experiments.scenarios import (
    SWEEP_MODES,
    SWEEP_SCENARIOS,
    run_scenario_sweep,
)
from repro.scenarios import export_json, run_scenario

SEED = 2024
N_SESSIONS = 6
BENCH_CONFIG = HBOConfig(n_initial=2, n_iterations=3)
REPLAY_SCENARIO = "flash-crowd"


def run() -> Dict[str, Any]:
    first = export_json(
        run_scenario(
            REPLAY_SCENARIO, seed=SEED, hbo=BENCH_CONFIG,
            n_sessions=N_SESSIONS,
        )
    )
    second = export_json(
        run_scenario(
            REPLAY_SCENARIO, seed=SEED, hbo=BENCH_CONFIG,
            n_sessions=N_SESSIONS,
        )
    )
    replay = {
        "scenario": REPLAY_SCENARIO,
        "seed": SEED,
        "byte_identical": first == second,
        "artifact_bytes": len(first),
    }

    start = time.perf_counter()
    sweep = run_scenario_sweep(
        seed=SEED, config=BENCH_CONFIG, n_sessions=N_SESSIONS
    )
    sweep_s = time.perf_counter() - start
    cells = [
        {
            "scenario": cell.scenario,
            "mode": cell.mode,
            "n_sessions": cell.n_sessions,
            "p95_epsilon": cell.p95_epsilon,
            "p95_latency_ms": cell.p95_latency_ms,
            "mean_best_cost": cell.mean_best_cost,
            "median_periods_to_target": cell.median_converged,
        }
        for cell in sweep.cells
    ]
    coverage = {
        "scenarios": list(SWEEP_SCENARIOS),
        "modes": list(SWEEP_MODES),
        "n_cells": len(cells),
        "sweep_s": round(sweep_s, 2),
        "all_sessions_finished": all(
            cell.n_sessions == N_SESSIONS for cell in sweep.cells
        ),
        "all_costs_finite": all(
            math.isfinite(cell.mean_best_cost) for cell in sweep.cells
        ),
    }

    legacy_cfg = HBOConfig(n_initial=3, n_iterations=5)
    catalog_run = run_scenario(
        "legacy-fleet", seed=SEED, hbo=legacy_cfg, n_sessions=8
    )
    direct = run_fleet_experiment(seed=SEED, config=legacy_cfg, n_sessions=8)
    parity = {
        "seed": SEED,
        "n_sessions": 8,
        "reports_identical": catalog_run.result.reports == direct.result.reports,
    }

    return {
        "source": "tools/bench_pr10.py (make bench)",
        "setup": {
            "hbo": {"n_initial": 2, "n_iterations": 3},
            "n_sessions_per_cell": N_SESSIONS,
            "seed": SEED,
        },
        "headline": {
            "replay_byte_identical": replay["byte_identical"],
            "cells_completed": coverage["n_cells"],
            "min_cells": len(SWEEP_SCENARIOS) * len(SWEEP_MODES),
            "all_costs_finite": coverage["all_costs_finite"],
            "legacy_reports_identical": parity["reports_identical"],
        },
        "replay": replay,
        "sweep": {"coverage": coverage, "cells": cells},
        "legacy_parity": parity,
    }


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    report = run()
    headline = report["headline"]
    if not headline["replay_byte_identical"]:
        raise SystemExit(
            f"bench_pr10: two runs of {REPLAY_SCENARIO!r} at seed {SEED} "
            "exported different bytes — the replay contract is broken"
        )
    if headline["cells_completed"] < headline["min_cells"]:
        raise SystemExit(
            f"bench_pr10: sweep produced {headline['cells_completed']} "
            f"cells (need >= {headline['min_cells']}) — a scenario or "
            "serving mode failed to run"
        )
    if not headline["all_costs_finite"]:
        raise SystemExit(
            "bench_pr10: a sweep cell reported a non-finite mean best "
            "cost — some session never optimized"
        )
    if not headline["legacy_reports_identical"]:
        raise SystemExit(
            "bench_pr10: the legacy-fleet catalog entry no longer "
            "reproduces run_fleet_experiment's session reports — the "
            "catalog forked the legacy schedule"
        )
    with open(sys.argv[1], "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {sys.argv[1]}: {json.dumps(headline)}")


if __name__ == "__main__":
    main()

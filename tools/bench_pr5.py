"""Distill the edge-offloading frontier comparison into BENCH_pr5.json.

Usage: PYTHONPATH=src python tools/bench_pr5.py <output-json>

Runs ``repro.experiments.edge.run_edge_experiment`` — the exhaustive
device-only (N = 3) vs edge-enabled (N = 4) lattice comparison on the
heavy co-location scenario — and records the frontier optima the docs
quote: per-ratio ε for both grids, the strict-win count, the largest
equal-quality ε win, and the network-drift replay. The experiment is a
pure function of its seed, so the committed report is reproducible
byte-for-byte.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict

from repro.experiments.edge import EdgeExperimentResult, run_edge_experiment


def distill(result: EdgeExperimentResult) -> Dict[str, Any]:
    best = result.best_win
    return {
        "source": "repro.experiments.edge (tools/bench_pr5.py, make bench)",
        "setup": {
            "device": result.device,
            "scenario": result.scenario,
            "taskset": result.taskset,
            "w": result.w,
            "n_device_candidates": result.n_device_candidates,
            "n_edge_candidates": result.n_edge_candidates,
        },
        "headline": {
            "n_matched_ratios": len(result.rows),
            "n_strict_eps_wins": result.n_strict_wins,
            "largest_eps_win": round(best.epsilon_win, 6),
            "at_triangle_ratio": round(best.triangle_ratio, 6),
            "device_only_eps": round(best.device_only.epsilon, 6),
            "edge_enabled_eps": round(best.edge.epsilon, 6),
        },
        "matched_ratios": [
            {
                "triangle_ratio": round(row.triangle_ratio, 6),
                "device_counts": list(row.device_only.counts),
                "device_eps": round(row.device_only.epsilon, 6),
                "edge_counts": list(row.edge.counts),
                "edge_eps": round(row.edge.epsilon, 6),
                "eps_win": round(row.epsilon_win, 6),
            }
            for row in result.rows
        ],
        "network_drift": [
            {
                "time_s": row.time_s,
                "bandwidth_scale": row.bandwidth_scale,
                "n_offloaded": row.n_offloaded,
                "eps": round(row.epsilon, 6),
            }
            for row in result.drift
        ],
    }


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    report = distill(run_edge_experiment())
    with open(sys.argv[1], "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {sys.argv[1]}: {json.dumps(report['headline'])}")


if __name__ == "__main__":
    main()

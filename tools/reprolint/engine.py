"""Rule engine: file contexts, suppression parsing, and the lint loop.

A :class:`Rule` inspects one parsed module (via a :class:`FileContext`)
and yields :class:`Violation` records. The engine owns everything rules
should not have to care about: discovering files, parsing, matching
suppression comments, tracking which suppressions actually fired (the
RL009 audit), and aggregating results.

Suppression syntax (per line, or on any continuation line of the same
statement)::

    x = foo()  # reprolint: disable=RL001
    y = bar()  # reprolint: disable=RL001,RL003
    z = baz()  # reprolint: disable=all

File-level suppression (anywhere in the file, conventionally near the top)::

    # reprolint: disable-file=RL004

Two passes exist: per-file rules (``Rule.scope == "file"``) see one
:class:`FileContext`; project rules (``scope == "project"``, see
:mod:`reprolint.project`) see the whole import graph. ``lint_paths``
runs both plus the suppression audit — the incremental-cache front-end
lives in :mod:`reprolint.analyzer`.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from reprolint.project import ImportRecord, collect_imports, module_from_parts

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)

# Statement types whose spans must not absorb directives written inside
# their bodies; only their multi-line *headers* anchor to the statement.
_COMPOUND_STMTS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.If,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: Path
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> List[object]:
        return [self.line, self.col, self.rule_id, self.message]

    @staticmethod
    def from_json(path: Path, data: Sequence[object]) -> "Violation":
        line, col, rule_id, message = data
        return Violation(
            path=path,
            line=int(line),  # type: ignore[arg-type]
            col=int(col),  # type: ignore[arg-type]
            rule_id=str(rule_id),
            message=str(message),
        )


@dataclass(frozen=True)
class Directive:
    """One parsed ``# reprolint: disable[-file]=...`` comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    codes: FrozenSet[str]  # upper-cased rule ids, possibly containing "ALL"
    covers: FrozenSet[int]  # physical lines this directive applies to

    def to_json(self) -> List[object]:
        return [self.line, self.kind, sorted(self.codes), sorted(self.covers)]

    @staticmethod
    def from_json(data: Sequence[object]) -> "Directive":
        line, kind, codes, covers = data
        return Directive(
            line=int(line),  # type: ignore[arg-type]
            kind=str(kind),
            codes=frozenset(str(c) for c in codes),  # type: ignore[union-attr]
            covers=frozenset(int(c) for c in covers),  # type: ignore[union-attr]
        )


@dataclass
class Suppressions:
    """Parsed suppression directives for one file.

    ``match`` returns the index of the directive that silences a
    violation (or ``None``) so callers can account for which directives
    were actually consumed — the input to the RL009 stale-suppression
    audit.
    """

    directives: Tuple[Directive, ...] = ()

    def match(self, rule_id: str, line: int) -> Optional[int]:
        rule_id = rule_id.upper()
        for idx, directive in enumerate(self.directives):
            if "ALL" not in directive.codes and rule_id not in directive.codes:
                continue
            if directive.kind == "disable-file" or line in directive.covers:
                return idx
        return None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return self.match(rule_id, line) is not None

    # Legacy views kept for callers that predate directive tracking.

    @property
    def by_line(self) -> Dict[int, FrozenSet[str]]:
        out: Dict[int, Set[str]] = {}
        for directive in self.directives:
            if directive.kind == "disable":
                for line in directive.covers:
                    out.setdefault(line, set()).update(directive.codes)
        return {line: frozenset(codes) for line, codes in out.items()}

    @property
    def file_wide(self) -> FrozenSet[str]:
        codes: Set[str] = set()
        for directive in self.directives:
            if directive.kind == "disable-file":
                codes |= directive.codes
        return frozenset(codes)


def _statement_spans(tree: ast.Module) -> Dict[int, Tuple[int, int]]:
    """Map physical lines of multi-line statements to the statement span.

    A directive written on any physical line of a parenthesized or
    backslash-continued statement suppresses violations reported anywhere
    in that statement — at its first line (where most rules anchor) or at
    an inner expression line. Compound statements contribute only their
    header lines (``def``/``if``/... signature up to the colon), so a
    directive inside a function body never leaks onto the ``def`` line.
    Single-line statements contribute nothing: the directive's own line
    already covers them.
    """
    spans: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if isinstance(node, _COMPOUND_STMTS):
            body = getattr(node, "body", None)
            if not body:
                continue
            end = body[0].lineno - 1
        if end <= node.lineno:
            continue
        for line in range(node.lineno, end + 1):
            # Innermost statement wins (largest start line).
            current = spans.get(line)
            if current is None or current[0] < node.lineno:
                spans[line] = (node.lineno, end)
    return spans


def parse_suppressions(
    source: str, tree: Optional[ast.Module] = None
) -> Suppressions:
    """Extract suppression directives from comment tokens.

    Uses :mod:`tokenize` rather than a per-line regex scan so that a
    directive-looking substring inside a string literal never silences a
    rule. When ``tree`` is supplied, directives on continuation lines are
    anchored to their statement's first line (where violations report).
    """
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        comments: List[Tuple[int, str]] = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported by the engine as E901; directives
        # found by regex are still honoured so partial files behave sanely.
        comments = [
            (i, line)
            for i, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    spans = _statement_spans(tree) if tree is not None else {}
    directives: List[Directive] = []
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = frozenset(
            part.strip().upper()
            for part in match.group(2).split(",")
            if part.strip()
        )
        if not codes:
            continue
        covers = {lineno}
        span = spans.get(lineno)
        if span is not None:
            covers.update(range(span[0], span[1] + 1))
        directives.append(
            Directive(
                line=lineno,
                kind=match.group(1),
                codes=codes,
                covers=frozenset(covers),
            )
        )
    return Suppressions(directives=tuple(directives))


@dataclass
class FileContext:
    """Everything a per-file rule may inspect about one module."""

    path: Path
    source: str
    tree: ast.Module
    module: Optional[str] = None

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by rules to decide applicability."""
        return self.path.parts

    @property
    def filename(self) -> str:
        return self.path.name

    def in_package(self, *names: str) -> bool:
        """True if any of ``names`` appears as a path component."""
        return any(name in self.parts for name in names)

    def dotted_module(self) -> Optional[str]:
        """Registry module name, falling back to path-derived for fixtures."""
        return self.module or module_from_parts(self.path)


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id``/``summary`` and implement :meth:`check`;
    :meth:`applies` gates the rule on the file's location so repo policy
    (e.g. "RL003 only in the numerical packages") lives with the rule.
    ``scope`` is ``"file"`` for AST rules, ``"project"`` for import-graph
    rules, and ``"audit"`` for the engine-driven suppression audit.
    """

    id: str = "RL000"
    summary: str = ""
    scope: str = "file"

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


@dataclass
class FileAnalysis:
    """Per-file result of the per-file pass — everything the cache stores.

    Project-pass and audit violations are *not* here: they are recomputed
    from ``imports``/``directives`` each run, which is what makes cached
    entries safe to reuse when an unrelated file changes the graph.
    """

    path: Path
    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    used_directives: Set[int] = field(default_factory=set)
    suppressions: Suppressions = field(default_factory=Suppressions)
    applied_rule_ids: Set[str] = field(default_factory=set)
    module: Optional[str] = None
    imports: Tuple[ImportRecord, ...] = ()
    error: Optional[Violation] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "violations": [v.to_json() for v in self.violations],
            "suppressed": self.suppressed,
            "used": sorted(self.used_directives),
            "directives": [d.to_json() for d in self.suppressions.directives],
            "applied": sorted(self.applied_rule_ids),
            "module": self.module,
            "imports": [r.to_json() for r in self.imports],
            "error": self.error.to_json() if self.error else None,
        }

    @staticmethod
    def from_json(path: Path, data: Dict[str, object]) -> "FileAnalysis":
        error = data.get("error")
        return FileAnalysis(
            path=path,
            violations=[
                Violation.from_json(path, v)
                for v in data.get("violations", ())  # type: ignore[union-attr]
            ],
            suppressed=int(data.get("suppressed", 0)),  # type: ignore[arg-type]
            used_directives={int(i) for i in data.get("used", ())},  # type: ignore[union-attr]
            suppressions=Suppressions(
                directives=tuple(
                    Directive.from_json(d)
                    for d in data.get("directives", ())  # type: ignore[union-attr]
                )
            ),
            applied_rule_ids={str(r) for r in data.get("applied", ())},  # type: ignore[union-attr]
            module=str(data["module"]) if data.get("module") else None,
            imports=tuple(
                ImportRecord.from_json(r)
                for r in data.get("imports", ())  # type: ignore[union-attr]
            ),
            error=Violation.from_json(path, error) if error else None,  # type: ignore[arg-type]
        )


def file_rules(rules: Sequence[Rule]) -> List[Rule]:
    return [rule for rule in rules if rule.scope == "file"]


def analyze_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
    module: Optional[str] = None,
) -> FileAnalysis:
    """Run the per-file pass over in-memory ``source``.

    Parses once, extracts import records (when ``module`` resolves),
    applies per-file rules under suppression matching, and records which
    directives were consumed.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        error = Violation(
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            rule_id="E901",
            message=f"syntax error: {exc.msg}",
        )
        return FileAnalysis(path=path, violations=[error], error=error)
    analysis = FileAnalysis(path=path, module=module)
    if module is not None:
        analysis.imports = collect_imports(
            tree, module, is_package=path.name == "__init__.py"
        )
    ctx = FileContext(path=path, source=source, tree=tree, module=module)
    analysis.suppressions = parse_suppressions(source, tree)
    for rule in file_rules(rules):
        if not rule.applies(ctx):
            continue
        analysis.applied_rule_ids.add(rule.id)
        for violation in rule.check(ctx):
            idx = analysis.suppressions.match(violation.rule_id, violation.line)
            if idx is None:
                analysis.violations.append(violation)
            else:
                analysis.used_directives.add(idx)
                analysis.suppressed += 1
    analysis.violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return analysis


def analyze_file(
    path: Path, rules: Sequence[Rule], module: Optional[str] = None
) -> FileAnalysis:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        error = Violation(
            path=path,
            line=1,
            col=0,
            rule_id="E902",
            message=f"cannot read file: {exc}",
        )
        return FileAnalysis(path=path, violations=[error], error=error)
    return analyze_source(source, path, rules, module=module)


def lint_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
) -> List[Violation]:
    """Lint in-memory ``source`` as if it lived at ``path``.

    The path controls rule applicability (packages, filenames) — the
    self-test suite leans on this to exercise rules against fixture
    snippets without touching the real tree. Runs per-file rules plus the
    RL009 audit; project rules need ``lint_paths``/``analyze_paths``.
    """
    analysis = analyze_source(source, path, rules)
    violations = list(analysis.violations)
    if analysis.error is None and any(r.id == "RL009" for r in rules):
        from reprolint.rules.suppression_audit import audit_suppressions

        violations.extend(
            audit_suppressions(
                path=path,
                suppressions=analysis.suppressions,
                used=analysis.used_directives,
                evaluated_ids={r.id for r in file_rules(rules)},
            )
        )
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule_id))
    return violations


def lint_file(path: Path, rules: Sequence[Rule]) -> List[Violation]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                path=path,
                line=1,
                col=0,
                rule_id="E902",
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, path, rules)


def lint_paths(paths: Sequence[Path], rules: Sequence[Rule]) -> List[Violation]:
    """Full pipeline over paths: per-file, project, and audit passes."""
    from reprolint.analyzer import analyze_paths

    return analyze_paths(paths, rules).violations

"""Rule engine: file contexts, suppression parsing, and the lint loop.

A :class:`Rule` inspects one parsed module (via a :class:`FileContext`)
and yields :class:`Violation` records. The engine owns everything rules
should not have to care about: discovering files, parsing, matching
suppression comments, and aggregating results.

Suppression syntax (per line, after the offending statement's first line)::

    x = foo()  # reprolint: disable=RL001
    y = bar()  # reprolint: disable=RL001,RL003
    z = baz()  # reprolint: disable=all

File-level suppression (anywhere in the file, conventionally near the top)::

    # reprolint: disable-file=RL004
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    path: Path
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class Suppressions:
    """Parsed ``# reprolint: disable=...`` directives for one file."""

    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_wide: FrozenSet[str] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "ALL" in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return "ALL" in rules or rule_id in rules


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from comment tokens.

    Uses :mod:`tokenize` rather than a per-line regex scan so that a
    directive-looking substring inside a string literal never silences a
    rule.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        comments: List[Tuple[int, str]] = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported by the engine as E901; directives
        # found by regex are still honoured so partial files behave sanely.
        comments = [
            (i, line)
            for i, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        kind = match.group(1)
        rules = {
            part.strip().upper()
            for part in match.group(2).split(",")
            if part.strip()
        }
        if kind == "disable-file":
            file_wide |= rules
        else:
            by_line.setdefault(lineno, set()).update(rules)
    return Suppressions(
        by_line={k: frozenset(v) for k, v in by_line.items()},
        file_wide=frozenset(file_wide),
    )


@dataclass
class FileContext:
    """Everything a rule may inspect about one module."""

    path: Path
    source: str
    tree: ast.Module

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by rules to decide applicability."""
        return self.path.parts

    @property
    def filename(self) -> str:
        return self.path.name

    def in_package(self, *names: str) -> bool:
        """True if any of ``names`` appears as a path component."""
        return any(name in self.parts for name in names)


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id``/``summary`` and implement :meth:`check`;
    :meth:`applies` gates the rule on the file's location so repo policy
    (e.g. "RL003 only in the numerical packages") lives with the rule.
    """

    id: str = "RL000"
    summary: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_source(
    source: str,
    path: Path,
    rules: Sequence[Rule],
) -> List[Violation]:
    """Lint in-memory ``source`` as if it lived at ``path``.

    The path controls rule applicability (packages, filenames) — the
    self-test suite leans on this to exercise rules against fixture
    snippets without touching the real tree.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="E901",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    violations: List[Violation] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for violation in rule.check(ctx):
            if not suppressions.is_suppressed(violation.rule_id, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (str(v.path), v.line, v.col, v.rule_id))
    return violations


def lint_file(path: Path, rules: Sequence[Rule]) -> List[Violation]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                path=path,
                line=1,
                col=0,
                rule_id="E902",
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, path, rules)


def lint_paths(paths: Sequence[Path], rules: Sequence[Rule]) -> List[Violation]:
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, rules))
    return violations

"""reprolint — repo-native static analysis for the HBO reproduction.

An AST-based linter (stdlib only) that enforces the contracts this
reproduction states in prose but Python does not check:

- RL001 determinism: stochastic draws and wall-clock reads must flow
  through ``repro.rng`` / ``repro.sim.clock``.
- RL002 error hygiene: raised errors derive from ``ReproError`` (or are
  builtin ``TypeError``/``ValueError``-style re-raises).
- RL003 float equality: no ``==``/``!=`` against float-valued expressions
  in the numerical packages.
- RL004 units: latency/time/period quantities carry an explicit unit
  suffix or a ``Ms``/``Seconds`` alias annotation.
- RL005 public-API annotations: public functions are fully annotated.

Run ``python -m reprolint src`` (exits nonzero on violations) or see
``docs/static-analysis.md`` for the rule catalog and suppression syntax.
"""

from __future__ import annotations

from reprolint.engine import (
    FileContext,
    Rule,
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from reprolint.rules import ALL_RULES, rules_by_id

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Rule",
    "Violation",
    "__version__",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rules_by_id",
]

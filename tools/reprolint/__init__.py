"""reprolint — repo-native static analysis for the HBO reproduction.

A multi-pass, stdlib-only analyzer that enforces the contracts this
reproduction states in prose but Python does not check. Per-file AST
rules:

- RL001 determinism: stochastic draws and wall-clock reads must flow
  through ``repro.rng`` / ``repro.sim.clock``.
- RL002 error hygiene: raised errors derive from ``ReproError`` (or are
  builtin ``TypeError``/``ValueError``-style re-raises).
- RL003 float equality: no ``==``/``!=`` against float-valued expressions
  in the numerical packages.
- RL004 units: latency/time/period quantities carry an explicit unit
  suffix or a ``Ms``/``Seconds`` alias annotation.
- RL005 public-API annotations: public functions are fully annotated.
- RL007 RNG-stream discipline: no draw-after-``spawn_rngs``, no
  module-level rng state, no rng threaded into sibling constructions.
- RL008 parity single-source: registered float formulas (edge pricing,
  contention slowdown, Eq. 2/4/5 cost terms) only in their leaf modules.

Project pass (over the repo import graph):

- RL006 layering conformance: imports must respect the declared layer
  DAG; upward edges — even ``TYPE_CHECKING``-gated — are violations.

Audit pass:

- RL009 stale suppressions: a ``# reprolint: disable=`` directive that
  silences nothing is itself a violation.

Per-file results are cached under ``.reprolint_cache/`` keyed by content
hash, so warm runs re-analyze only changed files. Run ``python -m
reprolint src benchmarks examples`` (exits nonzero on violations or
engine errors) or see ``docs/static-analysis.md`` for the rule catalog,
suppression syntax, baseline workflow, and SARIF output.
"""

from __future__ import annotations

from reprolint.analyzer import AnalysisReport, analyze_paths
from reprolint.engine import (
    FileAnalysis,
    FileContext,
    Rule,
    Violation,
    analyze_source,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from reprolint.project import ImportRecord, ProjectContext, module_name
from reprolint.rules import ALL_RULES, rules_by_id

__version__ = "2.0.0"

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "FileAnalysis",
    "FileContext",
    "ImportRecord",
    "ProjectContext",
    "Rule",
    "Violation",
    "__version__",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name",
    "rules_by_id",
]

"""Baseline support: land strict rules without mass-editing old code.

A baseline file records known violations as line-independent
fingerprints ``(relative path, rule id, message)`` with a count. Under
``--baseline``, matching violations are filtered (each fingerprint
absorbs up to its recorded count, so *new* duplicates of a baselined
pattern still fail). ``--update-baseline`` rewrites the file from the
current run.

The checked-in ``reprolint_baseline.json`` for this repo is empty by
policy: every true violation the project rules found in ``src/repro``
was fixed, not baselined. The mechanism exists for future rule
introductions.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from reprolint.engine import Violation

BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


def _fingerprint(violation: Violation, root: Path) -> Fingerprint:
    try:
        rel = violation.path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = violation.path.as_posix()
    return (rel, violation.rule_id, violation.message)


def load_baseline(path: Path) -> "Counter[Fingerprint]":
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline format in {path} "
            f"(expected version {BASELINE_VERSION})"
        )
    counts: Counter[Fingerprint] = Counter()
    for entry in data.get("entries", []):
        counts[
            (
                str(entry["path"]),
                str(entry["rule_id"]),
                str(entry["message"]),
            )
        ] += int(entry.get("count", 1))
    return counts


def filter_baselined(
    violations: Sequence[Violation],
    baseline: "Counter[Fingerprint]",
    root: Path,
) -> Tuple[List[Violation], int]:
    """Drop violations covered by the baseline; return (kept, absorbed)."""
    budget = Counter(baseline)
    kept: List[Violation] = []
    absorbed = 0
    for violation in violations:
        fp = _fingerprint(violation, root)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            absorbed += 1
        else:
            kept.append(violation)
    return kept, absorbed


def write_baseline(
    path: Path, violations: Sequence[Violation], root: Path
) -> None:
    counts: Counter[Fingerprint] = Counter(
        _fingerprint(v, root) for v in violations
    )
    entries: List[Dict[str, object]] = [
        {"path": fp[0], "rule_id": fp[1], "message": fp[2], "count": count}
        for fp, count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

"""Command-line front-end: ``python -m reprolint [paths] [options]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from reprolint.engine import Rule, lint_paths
from reprolint.rules import ALL_RULES, rules_by_id


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    registry = rules_by_id()
    if select:
        wanted = [part.strip().upper() for part in select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in registry]
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(unknown)}")
        rules: List[Rule] = [registry[rule_id] for rule_id in wanted]
    else:
        rules = list(ALL_RULES)
    if ignore:
        dropped = {part.strip().upper() for part in ignore.split(",") if part.strip()}
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-native static analysis for the HBO reproduction: "
            "determinism, error hygiene, float equality, unit suffixes, "
            "and public-API annotations."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line; print violations only",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0
    rules = _select_rules(args.select, args.ignore)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2
    violations = lint_paths(paths, rules)
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        status = "clean" if not violations else f"{len(violations)} {noun}"
        print(f"reprolint: {status} ({', '.join(r.id for r in rules)})")
    return 1 if violations else 0

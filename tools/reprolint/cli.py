"""Command-line front-end: ``python -m reprolint [paths] [options]``.

Exit codes: 0 clean, 1 violations, 2 usage errors *or* engine-internal
parse/read errors (E901/E902) — a file the analyzer could not see is
never a passing run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from reprolint.analyzer import analyze_paths
from reprolint.baseline import filter_baselined, load_baseline, write_baseline
from reprolint.cache import DEFAULT_CACHE_DIR
from reprolint.engine import Rule
from reprolint.rules import ALL_RULES, rules_by_id
from reprolint.sarif import write_sarif


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    registry = rules_by_id()
    if select:
        wanted = [part.strip().upper() for part in select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in registry]
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(unknown)}")
        rules: List[Rule] = [registry[rule_id] for rule_id in wanted]
    else:
        rules = list(ALL_RULES)
    if ignore:
        dropped = {part.strip().upper() for part in ignore.split(",") if part.strip()}
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def _explain(rule_id: str) -> int:
    registry = rules_by_id()
    rule = registry.get(rule_id.strip().upper())
    if rule is None:
        print(
            f"reprolint: unknown rule id: {rule_id} "
            f"(known: {', '.join(sorted(registry))})",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.id} — {rule.summary}\n")
    doc = sys.modules[type(rule).__module__].__doc__
    if doc:
        print(doc.strip())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Repo-native static analysis for the HBO reproduction: "
            "determinism, error hygiene, float equality, unit suffixes, "
            "public-API annotations, layering, RNG-stream discipline, "
            "parity single-source, and suppression auditing."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print the documentation for one rule id and exit",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        type=Path,
        help="also write violations as SARIF 2.1.0 to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help="filter violations recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from this run's violations and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the per-file pass (0 = auto)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental analysis cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line; print violations only",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0
    if args.explain:
        return _explain(args.explain)
    rules = _select_rules(args.select, args.ignore)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"reprolint: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and args.baseline is None:
        print(
            "reprolint: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2

    jobs = args.jobs
    if jobs <= 0:
        import os

        jobs = min(os.cpu_count() or 1, 8)
    cache_dir = None if args.no_cache else args.cache_dir
    report = analyze_paths(paths, rules, cache_dir=cache_dir, jobs=jobs)
    root = Path.cwd()

    violations = report.violations
    absorbed = 0
    if args.update_baseline:
        write_baseline(args.baseline, violations, root)
        if not args.quiet:
            print(
                f"reprolint: baseline updated with {len(violations)} "
                f"violation(s) -> {args.baseline}"
            )
        return 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"reprolint: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        violations, absorbed = filter_baselined(violations, baseline, root)

    if args.sarif is not None:
        write_sarif(args.sarif, violations, rules, root)

    for violation in violations:
        print(violation.render())
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        file_noun = "file" if report.files_analyzed == 1 else "files"
        status = f"{len(violations)} {noun}" if violations else (
            f"clean — 0 {noun}"
        )
        summary = (
            f"reprolint: {status} in {report.files_analyzed} {file_noun} "
            f"({report.suppressed} suppressed)"
        )
        if absorbed:
            summary += f" [{absorbed} baselined]"
        print(summary)
    if report.errors:
        return 2
    return 1 if violations else 0

"""Incremental analysis cache keyed by file content hashes.

Layout: a single JSON document at ``<cache-dir>/cache.json``::

    {
      "version": 1,
      "signature": "<sha256 of analyzer sources + active rule ids>",
      "files": {
        "<path as given>": {"hash": "<sha256 of source>", "analysis": {...}}
      }
    }

The entry payload is :meth:`reprolint.engine.FileAnalysis.to_json` — the
per-file pass output *including* import records and suppression
directives, which is what lets the project pass and the RL009 audit run
on a warm cache without re-parsing a single file.

Invalidation is entirely content-driven:

- a file whose source hash changed is re-analyzed (and its fresh import
  records automatically update the project graph);
- ``signature`` folds in the content of every ``tools/reprolint/*.py``
  source plus the active rule ids, so editing the analyzer or changing
  the rule selection drops the whole cache;
- project-pass results are never cached, so graph-shape changes need no
  bookkeeping — the pass is recomputed each run from (possibly cached)
  import records in O(edges).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Sequence

from reprolint.engine import FileAnalysis, Rule

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = Path(".reprolint_cache")


def source_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def tool_signature(rules: Sequence[Rule]) -> str:
    """Hash of the analyzer's own sources and the active rule ids."""
    digest = hashlib.sha256()
    tool_dir = Path(__file__).resolve().parent
    for path in sorted(tool_dir.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.name.encode())
        try:
            digest.update(path.read_bytes())
        except OSError:
            pass
    digest.update(",".join(sorted(rule.id for rule in rules)).encode())
    return digest.hexdigest()


class AnalysisCache:
    """Load/store per-file analyses under a content-hash key."""

    def __init__(self, cache_dir: Path, signature: str) -> None:
        self.cache_dir = cache_dir
        self.path = cache_dir / "cache.json"
        self.signature = signature
        self._entries: Dict[str, Dict[str, object]] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("signature") != self.signature
        ):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._entries = files

    def get(self, path: Path, content_hash: str) -> Optional[FileAnalysis]:
        entry = self._entries.get(str(path))
        if not isinstance(entry, dict) or entry.get("hash") != content_hash:
            return None
        payload = entry.get("analysis")
        if not isinstance(payload, dict):
            return None
        try:
            return FileAnalysis.from_json(path, payload)
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self, path: Path, content_hash: str, analysis: FileAnalysis
    ) -> None:
        self._entries[str(path)] = {
            "hash": content_hash,
            "analysis": analysis.to_json(),
        }

    def save(self) -> None:
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "version": CACHE_VERSION,
                "signature": self.signature,
                "files": self._entries,
            }
            tmp = self.path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            # Caching is an optimization; never fail the run over it.
            pass

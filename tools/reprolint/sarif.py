"""SARIF 2.1.0 emitter for GitHub code-scanning annotations.

Produces the minimal valid document: one run, a ``tool.driver`` carrying
the rule catalog (including the synthetic E901/E902 engine errors so
every result's ``ruleId`` resolves), and one ``result`` per violation
with a ``physicalLocation``. Paths are emitted repo-relative with POSIX
separators as SARIF requires of ``artifactLocation.uri``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from reprolint.engine import Rule, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_ENGINE_RULES = {
    "E901": "file could not be parsed (syntax error)",
    "E902": "file could not be read",
}


def _relative_uri(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def to_sarif(
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    root: Path,
) -> Dict[str, object]:
    catalog: List[Dict[str, object]] = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
        }
        for rule in rules
    ]
    known = {rule.id for rule in rules}
    for rule_id, text in _ENGINE_RULES.items():
        if rule_id not in known:
            catalog.append(
                {"id": rule_id, "shortDescription": {"text": text}}
            )
    index = {entry["id"]: i for i, entry in enumerate(catalog)}
    results: List[Dict[str, object]] = []
    for violation in violations:
        result: Dict[str, object] = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(violation.path, root)
                        },
                        "region": {
                            "startLine": max(1, violation.line),
                            "startColumn": max(1, violation.col + 1),
                        },
                    }
                }
            ],
        }
        if violation.rule_id in index:
            result["ruleIndex"] = index[violation.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": "2.0.0",
                        "rules": catalog,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    out_path: Path,
    violations: Sequence[Violation],
    rules: Sequence[Rule],
    root: Path,
) -> None:
    document = to_sarif(violations, rules, root)
    out_path.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )

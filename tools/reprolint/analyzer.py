"""Multi-pass orchestration: per-file pass, project pass, audit pass.

``analyze_paths`` is the one entry point behind both ``lint_paths`` and
the CLI:

1. **Per-file pass.** Each discovered file is content-hashed; cache hits
   are reused verbatim, misses are analyzed (optionally across a
   ``multiprocessing`` pool — rules are stateless, so workers rebuild
   them from the registry by id).
2. **Project pass.** Module registrations and import records from *all*
   files (cached or fresh) are assembled into a
   :class:`reprolint.project.ProjectContext`; project-scoped rules run
   over it. Their violations respect the same suppression directives,
   and consumed directives feed the audit.
3. **Audit pass (RL009).** With per-file and project suppression usage
   merged, any directive that silenced nothing is reported.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reprolint.cache import AnalysisCache, source_hash, tool_signature
from reprolint.engine import (
    FileAnalysis,
    Rule,
    Violation,
    analyze_source,
    file_rules,
    iter_python_files,
)
from reprolint.project import ProjectContext, ProjectRule, module_name

# Below this many cache misses the pool costs more than it saves.
_MIN_FILES_FOR_POOL = 8


@dataclass
class AnalysisReport:
    """Aggregated result of a full analyze_paths run."""

    violations: List[Violation] = field(default_factory=list)
    files_analyzed: int = 0
    files_reanalyzed: List[Path] = field(default_factory=list)
    suppressed: int = 0
    errors: List[Violation] = field(default_factory=list)

    @property
    def violation_files(self) -> int:
        return len({str(v.path) for v in self.violations})


def _analyze_one(args: Tuple[str, str, Tuple[str, ...]]) -> Dict[str, object]:
    """Pool worker: analyze one source, returning the JSON-codec payload."""
    path_str, source, rule_ids = args
    from reprolint.rules import rules_by_id

    registry = rules_by_id()
    rules = [registry[rule_id] for rule_id in rule_ids if rule_id in registry]
    path = Path(path_str)
    analysis = analyze_source(source, path, rules, module=module_name(path))
    return analysis.to_json()


def _run_per_file_pass(
    files: Sequence[Path],
    rules: Sequence[Rule],
    cache: Optional[AnalysisCache],
    jobs: int,
) -> Tuple[Dict[Path, FileAnalysis], List[Path]]:
    analyses: Dict[Path, FileAnalysis] = {}
    misses: List[Tuple[Path, str, str]] = []  # (path, source, hash)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            error = Violation(
                path=path,
                line=1,
                col=0,
                rule_id="E902",
                message=f"cannot read file: {exc}",
            )
            analyses[path] = FileAnalysis(
                path=path, violations=[error], error=error
            )
            continue
        content_hash = source_hash(source)
        if cache is not None:
            hit = cache.get(path, content_hash)
            if hit is not None:
                analyses[path] = hit
                continue
        misses.append((path, source, content_hash))

    rule_ids = tuple(rule.id for rule in rules)
    if jobs > 1 and len(misses) >= _MIN_FILES_FOR_POOL:
        with multiprocessing.Pool(processes=jobs) as pool:
            payloads = pool.map(
                _analyze_one,
                [(str(path), source, rule_ids) for path, source, _ in misses],
            )
        fresh = [
            FileAnalysis.from_json(path, payload)
            for (path, _, _), payload in zip(misses, payloads)
        ]
    else:
        fresh = [
            analyze_source(source, path, rules, module=module_name(path))
            for path, source, _ in misses
        ]
    for (path, _, content_hash), analysis in zip(misses, fresh):
        analyses[path] = analysis
        if cache is not None:
            cache.put(path, content_hash, analysis)
    return analyses, [path for path, _, _ in misses]


def _run_project_pass(
    analyses: Dict[Path, FileAnalysis],
    rules: Sequence[Rule],
) -> Tuple[List[Violation], int]:
    """Run project rules over the assembled graph; record directive usage."""
    project = ProjectContext()
    for path, analysis in analyses.items():
        if analysis.module is not None:
            project.add(analysis.module, path, analysis.imports)
    project_rules = [
        rule for rule in rules if isinstance(rule, ProjectRule)
    ]
    violations: List[Violation] = []
    suppressed = 0
    by_module = sorted(project.modules.items())
    for module, path in by_module:
        analysis = analyses.get(path)
        if analysis is None:
            continue
        for rule in project_rules:
            for violation in rule.check_module(
                module, path, project.imports.get(module, ()), project
            ):
                assert isinstance(violation, Violation)
                idx = analysis.suppressions.match(
                    violation.rule_id, violation.line
                )
                if idx is None:
                    violations.append(violation)
                else:
                    analysis.used_directives.add(idx)
                    suppressed += 1
    return violations, suppressed


def analyze_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run all passes over ``paths``; the single engine entry point."""
    files = list(iter_python_files(paths))
    cache: Optional[AnalysisCache] = None
    if cache_dir is not None:
        cache = AnalysisCache(cache_dir, tool_signature(rules))

    analyses, reanalyzed = _run_per_file_pass(files, rules, cache, jobs)
    report = AnalysisReport(
        files_analyzed=len(files), files_reanalyzed=reanalyzed
    )
    for analysis in analyses.values():
        report.violations.extend(analysis.violations)
        report.suppressed += analysis.suppressed
        if analysis.error is not None:
            report.errors.append(analysis.error)

    project_violations, project_suppressed = _run_project_pass(analyses, rules)
    report.violations.extend(project_violations)
    report.suppressed += project_suppressed

    if any(rule.id == "RL009" for rule in rules):
        from reprolint.rules.suppression_audit import audit_suppressions

        evaluated_ids: Set[str] = {r.id for r in file_rules(rules)}
        evaluated_ids |= {
            r.id for r in rules if isinstance(r, ProjectRule)
        }
        for path, analysis in analyses.items():
            if analysis.error is not None:
                continue
            for violation in audit_suppressions(
                path=path,
                suppressions=analysis.suppressions,
                used=analysis.used_directives,
                evaluated_ids=evaluated_ids,
            ):
                report.violations.append(violation)

    report.violations.sort(
        key=lambda v: (str(v.path), v.line, v.col, v.rule_id)
    )
    if cache is not None:
        cache.save()
    return report

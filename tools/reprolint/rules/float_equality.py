"""RL003 — no exact equality against float expressions in numerical code.

The BO surrogate, cost functions, and contention model are all floating-
point pipelines; ``x == 0.5`` silently becomes dead code after any
arithmetic touches ``x``. The rule fires on ``==``/``!=`` comparisons
where an operand is *evidently* float-valued (a float literal, a
``float(...)``/``math.*`` call, or arithmetic involving one). Comparisons
between names of unknown type are left alone — a static pass cannot see
dtypes, and over-flagging integer comparisons would train people to
suppress the rule. Use ``math.isclose`` / ``np.isclose`` instead.

Scope: the numerical packages only (``bo/``, ``core/``, ``device/``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from reprolint.engine import FileContext, Rule, Violation

_FLOAT_RETURNING_CALLS = {
    "float",
    "sqrt",
    "exp",
    "log",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "mean",
    "std",
    "var",
    "norm",
}


def _is_floaty(node: ast.expr) -> bool:
    """Conservatively: is this expression certainly float-valued?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields float
        return _is_floaty(node.left) or _is_floaty(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name in _FLOAT_RETURNING_CALLS
    return False


class FloatEqualityRule(Rule):
    id = "RL003"
    summary = "use math.isclose/np.isclose, not ==/!=, on float expressions"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_package("bo", "core", "device")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floaty(left) or _is_floaty(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.violation(
                        ctx,
                        node,
                        f"float `{symbol}` comparison — use math.isclose / "
                        "np.isclose (exact float equality is brittle)",
                    )
                    break  # one report per Compare node is enough

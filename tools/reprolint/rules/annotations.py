"""RL005 — public API functions are fully type-annotated.

The package ships a ``py.typed`` marker, so downstream type checkers
consume these annotations directly; an unannotated public function is a
hole in that contract. Public means: module-level functions and methods
of public classes whose name does not start with ``_`` (``__init__`` and
``__call__`` are included — they *are* the constructor/call API).

Every parameter except ``self``/``cls`` needs an annotation, and the
function needs a return annotation (``__init__`` is exempt from the
return annotation only if you suppress it — annotate ``-> None``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple, Union

from reprolint.engine import FileContext, Rule, Violation

_PUBLIC_DUNDERS = {"__init__", "__call__", "__post_init__"}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public_name(name: str) -> bool:
    if name in _PUBLIC_DUNDERS:
        return True
    return not name.startswith("_")


def _public_functions(
    tree: ast.Module,
) -> Iterator[Tuple[FunctionNode, str]]:
    """Yield (function, qualified-name) for the module's public surface.

    Only module-level functions and methods of public top-level classes
    count; nested helpers are implementation detail.
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public_name(node.name):
                yield node, node.name
        elif isinstance(node, ast.ClassDef) and _is_public_name(node.name):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public_name(item.name):
                        yield item, f"{node.name}.{item.name}"


class PublicAPIAnnotationsRule(Rule):
    id = "RL005"
    summary = "public functions must annotate every parameter and the return type"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, qualname in _public_functions(ctx.tree):
            missing: List[str] = []
            args = node.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            for arg in params:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if missing:
                yield self.violation(
                    ctx,
                    node,
                    f"public function `{qualname}` has unannotated "
                    f"parameter(s): {', '.join(missing)}",
                )
            if node.returns is None:
                yield self.violation(
                    ctx,
                    node,
                    f"public function `{qualname}` is missing a return "
                    "annotation (use `-> None` for procedures)",
                )

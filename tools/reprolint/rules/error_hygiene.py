"""RL002 — every raise in the library uses the ReproError hierarchy.

Callers are promised they can catch ``ReproError`` at API boundaries and
get everything the library ever throws (``src/repro/errors.py``). A stray
``raise Exception(...)`` or ``raise RuntimeError(...)`` silently breaks
that contract. Builtin ``TypeError``/``ValueError`` (and a couple of
protocol-mandated builtins) stay legal: they signal caller bugs, not
library failures, and mirror what stdlib containers raise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from reprolint.engine import FileContext, Rule, Violation

# Builtins a library module may raise directly.
_ALLOWED_BUILTINS = {
    "TypeError",
    "ValueError",
    "KeyError",
    "IndexError",
    "NotImplementedError",
    "StopIteration",
    "SystemExit",
    "KeyboardInterrupt",
    "AssertionError",
}

# Names that are never acceptable as a raised class.
_FORBIDDEN = {
    "Exception",
    "BaseException",
    "RuntimeError",
    "OSError",
    "IOError",
    "ArithmeticError",
    "Error",
}


class ErrorHygieneRule(Rule):
    id = "RL002"
    summary = "raise ReproError subclasses (or allowed builtins), never bare Exception"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        allowed = _ALLOWED_BUILTINS | self._error_imports(ctx.tree)
        allowed |= self._local_error_classes(ctx.tree, allowed)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if exc is None:
                continue  # bare re-raise inside except: always fine
            name = self._raised_name(exc)
            if name is None:
                continue  # raising a bound variable (re-raise pattern)
            if name in _FORBIDDEN:
                yield self.violation(
                    ctx,
                    node,
                    f"`raise {name}` — use a ReproError subclass from "
                    "repro.errors so callers can catch one base class",
                )
            elif name not in allowed:
                yield self.violation(
                    ctx,
                    node,
                    f"`raise {name}` — {name} is not imported from repro.errors "
                    "and is not an allowed builtin (TypeError/ValueError/...)",
                )

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _error_imports(tree: ast.Module) -> Set[str]:
        """Names imported from an ``errors`` module (``repro.errors`` etc.)."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module == "errors" or node.module.endswith(".errors"):
                    for alias in node.names:
                        names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _local_error_classes(tree: ast.Module, allowed: Set[str]) -> Set[str]:
        """Classes defined in this file that (transitively) extend an allowed
        base or ``Exception`` itself — this lets ``errors.py`` define the
        hierarchy without tripping its own rule."""
        local: Set[str] = set()
        grown = True
        while grown:  # fixed-point over in-file inheritance chains
            grown = False
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef) or node.name in local:
                    continue
                for base in node.bases:
                    base_name = base.id if isinstance(base, ast.Name) else None
                    if base_name in allowed | local or base_name == "Exception":
                        local.add(node.name)
                        grown = True
                        break
        return local

    @staticmethod
    def _raised_name(exc: ast.expr) -> "str | None":
        """Class name being raised, or None for non-class raises."""
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            # Lowercase names are almost always caught-exception variables
            # (``except ... as err: raise err``) — not class references.
            if exc.id and exc.id[0].isupper():
                return exc.id
            return None
        if isinstance(exc, ast.Attribute):
            return exc.attr if exc.attr and exc.attr[0].isupper() else None
        return None

"""RL006 — layering conformance against the declared layer DAG.

``docs/architecture.md`` declares the package layering in prose:
foundation (units/rng/errors) at the bottom, then the sim kernel, device
and edge passive models, the vectorized backend, the BO/core controller
stack, the sim harness, fleet, and finally the experiments/CLI shell.
This rule makes that DAG normative: every intra-``repro`` import edge
must point downward or sideways. Upward imports are violations even when
gated behind ``TYPE_CHECKING`` — a type-only edge still couples the
layers and tends to become a runtime edge under refactoring.

Bands are assigned by longest dotted-prefix match, so a submodule can be
pinned lower than its package (``repro.sim.clock`` is kernel-level even
though the ``repro.sim`` harness sits above ``repro.core``; ``repro.
edge.share`` is a passive leaf below ``repro.backend`` even though the
edge runtime sits above it). Documented backward-compat seams are
allowlisted explicitly rather than by weakening the bands.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from reprolint.engine import FileContext, Rule, Violation
from reprolint.project import ImportRecord, ProjectContext, ProjectRule

# Ordered low -> high. An import may only target the same or a lower band.
LAYER_BANDS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("foundation", ("repro.errors", "repro.units", "repro.rng")),
    ("sim-kernel", ("repro.sim.clock", "repro.sim.trace")),
    ("observability", ("repro.obs",)),
    (
        "device-static",
        (
            "repro.device.resources",
            "repro.device.soc",
            "repro.device.thermal",
            "repro.device.profiles",
            "repro.device.load",
        ),
    ),
    ("ar", ("repro.ar",)),
    (
        "models-edge-passive",
        (
            "repro.models",
            "repro.edge.share",
            "repro.edge.link",
            "repro.edge.server",
            "repro.edge.admission",
            "repro.edge.topology",
            "repro.edge.placement",
            # Passive report/value module: fleet aggregates and
            # convergence math, no upward knowledge of the fleet.
            "repro.fleet.telemetry",
        ),
    ),
    ("backend", ("repro.backend",)),
    ("device-dynamic", ("repro.device", "repro.edge")),
    ("bo", ("repro.bo",)),
    ("core", ("repro.core",)),
    ("baselines", ("repro.baselines", "repro.userstudy")),
    ("sim-harness", ("repro.sim",)),
    # Explicit pins for the SoA core: `table` carries the fleet's typed
    # surface (SessionSpec/HBOConfig/DeviceSimulator references), and
    # `shard` is the process-orchestration top of the package — both
    # stay in the fleet band even though they look lower-level.
    ("fleet", ("repro.fleet", "repro.fleet.table", "repro.fleet.shard")),
    # The scenario engine composes fleet configs (so it sits above fleet)
    # but is itself driven by experiments and the CLI (so below app). It
    # must never import `repro.experiments`: the legacy schedule moved
    # down into `repro.scenarios.generator` and the app band re-exports.
    ("scenarios", ("repro.scenarios",)),
    ("app", ("repro.experiments", "repro.cli", "repro.__main__")),
)

# Documented backward-compat seams: (importing module, imported module).
# Each entry must correspond to a re-export noted in docs/architecture.md.
ALLOWLIST: FrozenSet[Tuple[str, str]] = frozenset(
    {
        # PR 5 kept `repro.core.remote.NetworkLink` importable after the
        # link model moved to the edge package.
        ("repro.core.remote", "repro.edge.link"),
        # This PR moved fleet serialization out of sim.export; the lazy
        # wrapper there keeps old `from repro.sim.export import
        # fleet_report_to_dict` call sites working.
        ("repro.sim.export", "repro.fleet.export"),
    }
)

_PREFIX_TO_BAND: Dict[str, int] = {}
_BAND_NAMES: Tuple[str, ...] = tuple(name for name, _ in LAYER_BANDS)
for _idx, (_name, _prefixes) in enumerate(LAYER_BANDS):
    for _prefix in _prefixes:
        _PREFIX_TO_BAND[_prefix] = _idx

_APP_BAND = len(LAYER_BANDS) - 1


def band_of(module: str) -> Optional[int]:
    """Band index for ``module`` by longest-prefix match, None if unmapped."""
    if module == "repro":
        # The package facade re-exports the public API; it sits at the top.
        return _APP_BAND
    best: Optional[Tuple[int, int]] = None  # (prefix length, band)
    for prefix, band in _PREFIX_TO_BAND.items():
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), band)
    return best[1] if best else None


class LayeringRule(Rule, ProjectRule):
    id = "RL006"
    summary = "imports must respect the declared layer DAG (no upward edges)"
    scope = "project"

    def applies(self, ctx: FileContext) -> bool:  # pragma: no cover - unused
        return True

    def check_module(
        self,
        module: str,
        path: Path,
        records: Tuple[ImportRecord, ...],
        project: ProjectContext,
    ) -> Iterator[Violation]:
        importer_band = band_of(module)
        if importer_band is None:
            return
        for target, record in project.resolved_edges(module):
            if target == module:
                continue
            target_band = band_of(target)
            if target_band is None or target_band <= importer_band:
                continue
            if (module, target) in ALLOWLIST:
                continue
            gate = " [TYPE_CHECKING-gated]" if record.type_checking else ""
            yield Violation(
                path=path,
                line=record.line,
                col=record.col,
                rule_id=self.id,
                message=(
                    f"`{module}` (layer '{_BAND_NAMES[importer_band]}') imports "
                    f"`{target}` (layer '{_BAND_NAMES[target_band]}'){gate} — "
                    "upward edges violate the declared layer DAG; invert the "
                    "dependency or move the shared type down a layer"
                ),
            )

"""RL004 — temporal quantities must declare their unit.

The contention simulator works in milliseconds, the sim clock in seconds,
and the paper's figures mix both axes. A parameter called ``latency`` is a
seconds-vs-ms bug waiting to happen; ``latency_ms`` (or an annotation with
the ``Ms``/``Seconds`` aliases from ``repro.units``) is self-documenting
and greppable.

The rule inspects function parameters and class-level annotated fields
whose name contains a temporal word (latency/time/period/duration/delay/
timeout/interval) and whose annotation is float-like (or missing). It is
satisfied by:

- a unit suffix: ``_ms``, ``_s``, ``_us``, ``_ns``;
- an annotation using the ``Ms`` / ``Seconds`` aliases;
- a dimensionless tail (``_steps``, ``_ratio``, ``_factor``, ...) or
  count/flag prefix (``n_``, ``num_``, ``w_``, ``is_``...), which mark the
  value as not a physical time at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from reprolint.engine import FileContext, Rule, Violation

_TEMPORAL_WORDS = {
    "latency",
    "latencies",
    "time",
    "period",
    "duration",
    "delay",
    "timeout",
    "interval",
    "deadline",
}

_UNIT_SUFFIXES = {"ms", "s", "us", "ns", "hz"}

# Tail components that mark the value as dimensionless (a count, a ratio,
# a flag) rather than a physical time.
_DIMENSIONLESS_TAILS = {
    "steps",
    "step",
    "count",
    "counts",
    "ratio",
    "frac",
    "fraction",
    "factor",
    "scale",
    "weight",
    "only",
    "index",
    "idx",
    "id",
    "ids",
    "name",
    "names",
    "key",
    "keys",
    "axis",
    "label",
    "labels",
    "mode",
    "kind",
    "fn",
}

# Head components for counts, weights, and predicates.
_EXEMPT_HEADS = {"n", "num", "w", "is", "has", "use", "per"}


def _annotation_name(annotation: Optional[ast.expr]) -> str:
    """Terminal name of an annotation (``Optional[float]`` → handled by caller)."""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    return ""


def _is_float_like(annotation: Optional[ast.expr]) -> bool:
    """True for ``float`` and Optional/Union wrappers around it."""
    if annotation is None:
        return False
    name = _annotation_name(annotation)
    if name == "float":
        return True
    if isinstance(annotation, ast.Subscript):
        head = _annotation_name(annotation.value)
        if head in {"Optional", "Union"}:
            inner = annotation.slice
            elts: Sequence[ast.expr]
            if isinstance(inner, ast.Tuple):
                elts = inner.elts
            else:
                elts = [inner]
            return any(_is_float_like(e) for e in elts)
    return False


def _is_unit_alias(annotation: Optional[ast.expr]) -> bool:
    return _annotation_name(annotation) in {"Ms", "Seconds"}


def _needs_unit(name: str) -> bool:
    parts = name.lower().split("_")
    if not any(part in _TEMPORAL_WORDS for part in parts):
        return False
    if parts[-1] in _UNIT_SUFFIXES:
        return False
    if parts[-1] in _DIMENSIONLESS_TAILS:
        return False
    if parts[0] in _EXEMPT_HEADS:
        return False
    return True


class UnitSuffixRule(Rule):
    id = "RL004"
    summary = "temporal names need a _ms/_s suffix or a Ms/Seconds annotation"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_params(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_fields(ctx, node)

    def _check_params(
        self, ctx: FileContext, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Violation]:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in ("self", "cls"):
                continue
            if not _needs_unit(arg.arg):
                continue
            if _is_unit_alias(arg.annotation):
                continue
            if arg.annotation is not None and not _is_float_like(arg.annotation):
                continue  # ints count periods, sequences carry their own docs
            yield self.violation(
                ctx,
                arg,
                f"parameter `{arg.arg}` of `{node.name}` is a temporal quantity "
                "with no unit — suffix it `_ms`/`_s` or annotate with "
                "repro.units.Ms/Seconds",
            )

    def _check_fields(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterator[Violation]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            target = stmt.target
            if not isinstance(target, ast.Name):
                continue
            if not _needs_unit(target.id):
                continue
            if _is_unit_alias(stmt.annotation):
                continue
            if not _is_float_like(stmt.annotation):
                continue
            yield self.violation(
                ctx,
                stmt,
                f"field `{target.id}` of `{node.name}` is a temporal quantity "
                "with no unit — suffix it `_ms`/`_s` or annotate with "
                "repro.units.Ms/Seconds",
            )

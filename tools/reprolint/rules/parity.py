"""RL008 — parity single-source: registered float formulas live in leaves.

The scalar↔backend bitwise-parity contract (PR 4/5) holds because every
float formula that both paths evaluate is written exactly once, in a
declared leaf module, and called from both sides: edge pricing in
``repro.edge.share``, contention/processor-sharing slowdown in the same
leaf plus ``repro.device.soc``, and the Eq. 2/4/5 cost terms in
``repro.core.cost`` / ``repro.ar``. A second hand-written copy of any of
these formulas can drift by a single association or rounding and break
bitwise parity without failing any behavioral test.

This rule flags three shapes of duplication outside the allowed modules:

- a function *named* like a registered formula (``slowdown``,
  ``reward``, ``object_quality``, ...) whose body performs arithmetic;
- an assignment to a registered cost-term name (``phi``, ``epsilon``,
  ``quality``) whose value is an arithmetic expression;
- an arithmetic expression (``+ - * **``) combining two or more
  edge-pricing terms (calls to, or names bound from, the
  ``edge_*``/``sharing_slowdown`` helpers). Ratios (``/``) of pricing
  terms are deliberately exempt: duty cycles and fractions are consumer
  formulas, not re-derivations of the price.

The fix for a true positive is always the same: move the formula into
the leaf module and call it from both sites.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set

from reprolint.engine import FileContext, Rule, Violation

_EDGE_HELPERS: FrozenSet[str] = frozenset(
    {
        "edge_tx_ms",
        "edge_compute_ms",
        "edge_slowdown",
        "edge_demand",
        "edge_total_ms",
        "edge_queue_ms",
        "sharing_slowdown",
    }
)
_EDGE_ALLOWED: FrozenSet[str] = frozenset(
    {"repro.edge.share", "repro.backend.solve", "repro.device.contention"}
)

# Function names that *are* registered formulas, grouped with the modules
# allowed to define them. Exact-name matching: `energy_aware_cost` is a
# composition, not a re-derivation, and is not matched.
_DEF_FAMILIES: Dict[str, FrozenSet[str]] = {}
for _name in _EDGE_HELPERS:
    _DEF_FAMILIES[_name] = _EDGE_ALLOWED
for _name in ("slowdown", "render_penalty", "contention_slowdown"):
    _DEF_FAMILIES[_name] = _EDGE_ALLOWED | frozenset({"repro.device.soc"})
_COST_ALLOWED = frozenset({"repro.core.cost", "repro.backend.solve"})
for _name in ("normalized_average_latency", "reward", "cost", "latency_cost"):
    _DEF_FAMILIES[_name] = _COST_ALLOWED
_QUALITY_ALLOWED = frozenset(
    {"repro.ar.quality", "repro.ar.degradation", "repro.backend.solve"}
)
for _name in ("object_quality", "average_quality"):
    _DEF_FAMILIES[_name] = _QUALITY_ALLOWED

# Assignment targets that name registered cost quantities.
_TARGET_FAMILIES: Dict[str, FrozenSet[str]] = {
    "phi": _COST_ALLOWED,
    "epsilon": _COST_ALLOWED,
    "quality": _QUALITY_ALLOWED,
}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow)


def _leaf_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _pruned_descendants(node: ast.AST) -> Iterator[ast.AST]:
    """All descendants of ``node``, pruning nested function-def subtrees."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        yield from _pruned_descendants(child)


def _has_arith_binop(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.BinOp) and isinstance(child.op, _ARITH_OPS)
        for child in ast.walk(node)
    )


class ParitySingleSourceRule(Rule):
    id = "RL008"
    summary = "registered parity formulas may only be written in their leaf modules"

    def applies(self, ctx: FileContext) -> bool:
        module = ctx.dotted_module()
        return module is not None and (
            module == "repro" or module.startswith("repro.")
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.dotted_module()
        assert module is not None
        yield from self._check_scope(ctx, module, ctx.tree.body)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def_name(ctx, module, node)
                yield from self._check_scope(ctx, module, node.body)

    # -- re-derived formula functions ----------------------------------

    def _check_def_name(
        self, ctx: FileContext, module: str, node: ast.AST
    ) -> Iterator[Violation]:
        name = node.name  # type: ignore[attr-defined]
        allowed = _DEF_FAMILIES.get(name)
        if allowed is None or module in allowed:
            return
        if not any(_has_arith_binop(stmt) for stmt in node.body):  # type: ignore[attr-defined]
            return
        yield self.violation(
            ctx,
            node,
            f"`def {name}` re-derives a registered parity formula outside "
            f"its leaf modules ({', '.join(sorted(allowed))}) — call the "
            "leaf implementation instead",
        )

    # -- one lexical scope: assignments + edge-term combination --------

    def _check_scope(
        self, ctx: FileContext, module: str, body: Sequence[ast.stmt]
    ) -> Iterator[Violation]:
        tainted: Set[str] = set()
        top_binops: List[ast.BinOp] = []
        nested: Set[int] = set()
        for node in self._scope_walk(body):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_target_names(ctx, module, node)
                value = getattr(node, "value", None)
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(value, ast.Call)
                    and _leaf_name(value.func) in _EDGE_HELPERS
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                top_binops.append(node)
                for side in (node.left, node.right):
                    if isinstance(side, ast.BinOp) and isinstance(
                        side.op, _ARITH_OPS
                    ):
                        nested.add(id(side))
        if module in _EDGE_ALLOWED:
            return
        for binop in top_binops:
            if id(binop) in nested:
                continue
            terms = self._tainted_terms(binop, tainted)
            if len(terms) >= 2:
                yield self.violation(
                    ctx,
                    binop,
                    "arithmetic combines edge-pricing terms "
                    f"({', '.join(sorted(set(terms)))}) outside the parity "
                    f"leaves ({', '.join(sorted(_EDGE_ALLOWED))}) — move the "
                    "formula into repro.edge.share and call it",
                )

    def _scope_walk(self, body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        """Walk one scope without descending into nested function defs."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            yield from _pruned_descendants(stmt)

    def _check_target_names(
        self, ctx: FileContext, module: str, node: ast.stmt
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value: Optional[ast.expr] = node.value
        else:
            targets = [node.target]  # type: ignore[attr-defined]
            value = getattr(node, "value", None)
        if value is None or not (
            isinstance(value, ast.BinOp) and isinstance(value.op, _ARITH_OPS)
        ):
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            allowed = _TARGET_FAMILIES.get(target.id)
            if allowed is None or module in allowed:
                continue
            yield self.violation(
                ctx,
                node,
                f"assignment computes registered cost quantity `{target.id}` "
                f"outside its leaf modules ({', '.join(sorted(allowed))}) — "
                "call the leaf formula instead of re-deriving it",
            )

    def _tainted_terms(
        self, binop: ast.BinOp, tainted: Set[str]
    ) -> List[str]:
        """Names of edge-pricing terms appearing in an arithmetic tree.

        Descends only through arithmetic BinOps and unary minus, so terms
        hidden inside calls or subscripts do not count.
        """
        terms: List[str] = []

        def visit(node: ast.expr) -> None:
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                visit(node.left)
                visit(node.right)
            elif isinstance(node, ast.UnaryOp):
                visit(node.operand)
            elif isinstance(node, ast.Call):
                leaf = _leaf_name(node.func)
                if leaf in _EDGE_HELPERS:
                    terms.append(leaf + "(...)")
            elif isinstance(node, ast.Name) and node.id in tainted:
                terms.append(node.id)

        visit(binop)
        return terms

"""RL001 — all randomness and time must flow through the repro plumbing.

One integer seed must reproduce a whole experiment, and simulated time
must never leak host wall-clock. That only holds if no module constructs
its own entropy (``np.random.default_rng()``, ``random.random()``) or
reads the host clock (``time.time()``, ``datetime.now()``). The sanctioned
entry points are ``repro.rng.make_rng`` / ``spawn_rngs`` for randomness and
``repro.sim.clock.SimClock`` for time — so ``rng.py`` and ``clock.py``
themselves are exempt, as are pytest ``conftest.py`` fixture files.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from reprolint.engine import FileContext, Rule, Violation

# Module-level call targets that create entropy or read the wall clock.
# Keys are fully dotted names as written at the call site after alias
# resolution (``np`` is canonicalised to ``numpy``).
_BANNED_DOTTED: Dict[str, str] = {
    "numpy.random.default_rng": "use repro.rng.make_rng(seed) instead",
    "numpy.random.seed": "thread a Generator from repro.rng, never reseed globally",
    "numpy.random.RandomState": "legacy RandomState breaks stream spawning; use repro.rng",
    "numpy.random.rand": "use a Generator from repro.rng.make_rng",
    "numpy.random.randn": "use a Generator from repro.rng.make_rng",
    "numpy.random.randint": "use a Generator from repro.rng.make_rng",
    "numpy.random.random": "use a Generator from repro.rng.make_rng",
    "numpy.random.choice": "use a Generator from repro.rng.make_rng",
    "numpy.random.shuffle": "use a Generator from repro.rng.make_rng",
    "numpy.random.permutation": "use a Generator from repro.rng.make_rng",
    "numpy.random.normal": "use a Generator from repro.rng.make_rng",
    "numpy.random.uniform": "use a Generator from repro.rng.make_rng",
    "time.time": "use repro.sim.clock.SimClock for simulated time",
    "time.time_ns": "use repro.sim.clock.SimClock for simulated time",
    "time.perf_counter": "use repro.sim.clock.SimClock for simulated time",
    "time.perf_counter_ns": "use repro.sim.clock.SimClock for simulated time",
    "time.monotonic": "use repro.sim.clock.SimClock for simulated time",
    "time.monotonic_ns": "use repro.sim.clock.SimClock for simulated time",
    "time.process_time": "use repro.sim.clock.SimClock for simulated time",
    "datetime.datetime.now": "wall-clock timestamps break replay determinism",
    "datetime.datetime.utcnow": "wall-clock timestamps break replay determinism",
    "datetime.datetime.today": "wall-clock timestamps break replay determinism",
    "datetime.date.today": "wall-clock timestamps break replay determinism",
}

# Bare names that are banned when imported from these modules
# (``from numpy.random import default_rng`` → ``default_rng(...)``).
_BANNED_FROM_IMPORTS: Dict[str, Set[str]] = {
    "numpy.random": {
        "default_rng",
        "seed",
        "RandomState",
        "rand",
        "randn",
        "randint",
        "random",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
    },
    "random": {
        "random",
        "seed",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "Random",
        "SystemRandom",
    },
    "time": {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
    },
    "datetime": {"datetime", "date"},  # flagged only on .now()/.today() calls
}

_EXEMPT_FILENAMES = {"rng.py", "clock.py", "conftest.py"}


def _dotted_name(node: ast.expr) -> str:
    """Render an Attribute/Name chain as ``a.b.c`` ('' if not a pure chain)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class DeterminismRule(Rule):
    id = "RL001"
    summary = (
        "randomness/wall-clock must route through repro.rng and repro.sim.clock"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.filename not in _EXEMPT_FILENAMES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        aliases = self._module_aliases(ctx.tree)
        from_bindings = self._from_import_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if not dotted:
                continue
            yield from self._check_dotted(ctx, node, dotted, aliases)
            yield from self._check_bare(ctx, node, dotted, from_bindings)

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _module_aliases(tree: ast.Module) -> Dict[str, str]:
        """Map local alias → canonical module path (``np`` → ``numpy``)."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[name.asname or name.name.split(".")[0]] = name.name
        return aliases

    @staticmethod
    def _from_import_bindings(tree: ast.Module) -> Dict[str, str]:
        """Map bare imported name → ``module.name`` for banned modules."""
        bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                banned = _BANNED_FROM_IMPORTS.get(node.module)
                if not banned:
                    continue
                for name in node.names:
                    if name.name in banned:
                        bindings[name.asname or name.name] = (
                            f"{node.module}.{name.name}"
                        )
        return bindings

    def _check_dotted(
        self,
        ctx: FileContext,
        node: ast.Call,
        dotted: str,
        aliases: Dict[str, str],
    ) -> Iterator[Violation]:
        head, _, rest = dotted.partition(".")
        canonical = dotted
        if head in aliases:
            canonical = aliases[head] + ("." + rest if rest else "")
        hint = _BANNED_DOTTED.get(canonical)
        if hint is None and canonical.startswith("random.") and aliases.get(
            head
        ) == "random":
            hint = "use a Generator from repro.rng.make_rng"
        if hint is not None:
            yield self.violation(
                ctx, node, f"banned call `{dotted}(...)` — {hint}"
            )

    def _check_bare(
        self,
        ctx: FileContext,
        node: ast.Call,
        dotted: str,
        from_bindings: Dict[str, str],
    ) -> Iterator[Violation]:
        head, _, rest = dotted.partition(".")
        origin = from_bindings.get(head)
        if origin is None:
            return
        if origin in ("datetime.datetime", "datetime.date"):
            # ``from datetime import datetime`` is fine; only clock reads
            # (``datetime.now()``/``date.today()``) are banned.
            leaf = rest.split(".")[-1] if rest else ""
            if leaf not in {"now", "utcnow", "today"}:
                return
            hint = "wall-clock timestamps break replay determinism"
        elif rest:
            return  # attribute access on an imported callable — not a direct call
        else:
            hint = (
                "use repro.sim.clock.SimClock for simulated time"
                if origin.startswith("time.")
                else "use a Generator from repro.rng.make_rng"
            )
        yield self.violation(
            ctx,
            node,
            f"banned call `{dotted}(...)` (imported from `{origin}`) — {hint}",
        )

"""RL009 — stale-suppression audit: every directive must earn its keep.

A ``# reprolint: disable=...`` comment is a standing exception to repo
policy. When the code under it is later fixed or deleted, the directive
survives as an invisible hole: the next violation on that line is
silenced with no reviewer ever approving it. This audit closes the loop
— after all passes run, any directive that suppressed nothing is itself
a violation, as is any directive naming a rule id that does not exist
(usually a typo that has never suppressed anything).

Semantics:

- A directive is *stale* only when every rule id it names (or, for
  ``disable=all``, the whole registry) was actually evaluated in this
  run and none of its codes silenced a violation. Running with
  ``--select`` therefore never produces false staleness for rules that
  were skipped.
- A directive naming several codes is not stale if *any* of them fired;
  unknown ids inside it are still reported individually.
- RL009 violations may themselves be suppressed — but not by the very
  directive being audited.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Set

from reprolint.engine import Rule, Suppressions, Violation


class SuppressionAuditRule(Rule):
    """Registry entry for RL009 (listing/selection); the engine drives it."""

    id = "RL009"
    summary = "suppression directives that silence nothing are violations"
    scope = "audit"


def _suppressed_by_other(
    suppressions: Suppressions, own_index: int, line: int
) -> bool:
    for idx, directive in enumerate(suppressions.directives):
        if idx == own_index:
            continue
        if "ALL" not in directive.codes and "RL009" not in directive.codes:
            continue
        if directive.kind == "disable-file" or line in directive.covers:
            return True
    return False


def audit_suppressions(
    path: Path,
    suppressions: Suppressions,
    used: Iterable[int],
    evaluated_ids: Set[str],
) -> List[Violation]:
    """Flag unused and unknown-id directives for one file.

    ``evaluated_ids`` is the set of rule ids that had a chance to fire on
    this file in this run (active per-file rules plus, when the project
    pass ran, active project rules). A directive is auditable only when
    everything it names was evaluated.
    """
    from reprolint.rules import rules_by_id

    known = set(rules_by_id())
    used_set = set(used)
    violations: List[Violation] = []
    for idx, directive in enumerate(suppressions.directives):
        unknown = sorted(
            code
            for code in directive.codes
            if code != "ALL" and code not in known
        )
        for code in unknown:
            if not _suppressed_by_other(suppressions, idx, directive.line):
                violations.append(
                    Violation(
                        path=path,
                        line=directive.line,
                        col=0,
                        rule_id="RL009",
                        message=(
                            f"suppression references unknown rule id `{code}`"
                            " — fix the typo or remove it"
                        ),
                    )
                )
        if idx in used_set:
            continue
        if "ALL" in directive.codes:
            auditable_codes = known - {"RL009"}
        else:
            auditable_codes = set(directive.codes) - set(unknown)
        if not auditable_codes or not auditable_codes <= evaluated_ids:
            continue
        if _suppressed_by_other(suppressions, idx, directive.line):
            continue
        spelled = ",".join(sorted(directive.codes)).lower() if (
            "ALL" in directive.codes
        ) else ",".join(sorted(directive.codes))
        violations.append(
            Violation(
                path=path,
                line=directive.line,
                col=0,
                rule_id="RL009",
                message=(
                    f"stale suppression `# reprolint: {directive.kind}="
                    f"{spelled}` matches no violation — remove it"
                ),
            )
        )
    return violations

"""Rule registry. Import order fixes report ordering for equal locations."""

from __future__ import annotations

from typing import Dict, List

from reprolint.engine import Rule
from reprolint.rules.annotations import PublicAPIAnnotationsRule
from reprolint.rules.determinism import DeterminismRule
from reprolint.rules.error_hygiene import ErrorHygieneRule
from reprolint.rules.float_equality import FloatEqualityRule
from reprolint.rules.layering import LayeringRule
from reprolint.rules.parity import ParitySingleSourceRule
from reprolint.rules.rng_stream import RngStreamRule
from reprolint.rules.suppression_audit import SuppressionAuditRule
from reprolint.rules.units import UnitSuffixRule

ALL_RULES: List[Rule] = [
    DeterminismRule(),
    ErrorHygieneRule(),
    FloatEqualityRule(),
    UnitSuffixRule(),
    PublicAPIAnnotationsRule(),
    LayeringRule(),
    RngStreamRule(),
    ParitySingleSourceRule(),
    SuppressionAuditRule(),
]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in ALL_RULES}


__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "ErrorHygieneRule",
    "FloatEqualityRule",
    "LayeringRule",
    "ParitySingleSourceRule",
    "PublicAPIAnnotationsRule",
    "RngStreamRule",
    "SuppressionAuditRule",
    "UnitSuffixRule",
    "rules_by_id",
]

"""RL007 — RNG-stream discipline for bit-reproducible fleets.

PR 2's fleet determinism rests on a convention the type system cannot
see: independent sessions get *decorrelated* child streams via
``repro.rng.spawn_rngs``, never a shared parent generator. Three
anti-patterns break it silently:

1. **Draw-after-spawn.** ``spawn_rngs(rng, n)`` consumes entropy from
   ``rng`` to seed the children; drawing from the parent afterwards
   interleaves the parent stream with the children's seeding, so adding
   a session shifts every later draw.
2. **Module-level rng state.** A generator constructed at import time
   escapes the one-seed-reproduces-everything contract — its stream
   position depends on import order, not on the experiment seed.
3. **One rng threaded into sibling constructions.** Passing the same
   generator into each ``Session(...)``-like object built in a loop or
   comprehension couples the siblings: their draws interleave in
   whatever order they later execute. The fix is
   ``spawn_rngs(seed, n)`` + ``zip``.

The sibling check is deliberately heuristic: it flags only
capitalized (constructor-like) callees receiving an *outer-bound* bare
rng name, because threading one stream through sequential lowercase
calls (``space.sample(rng, k)`` per iteration) is the sanctioned way to
consume a single stream in order.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from reprolint.engine import FileContext, Rule, Violation

_EXEMPT_FILENAMES = {"rng.py", "conftest.py"}

_FACTORY_NAMES = {"make_rng", "default_rng"}
_SPAWN_NAMES = {"spawn_rngs"}


def _leaf_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_rng_name(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


def _assigned_names(node: ast.stmt) -> List[str]:
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    names: List[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                el.id for el in target.elts if isinstance(el, ast.Name)
            )
    return names


def _contains_rng_construction(node: ast.AST) -> Optional[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            leaf = _leaf_name(child.func)
            if leaf in _FACTORY_NAMES | _SPAWN_NAMES:
                return leaf
    return None


class RngStreamRule(Rule):
    id = "RL007"
    summary = "spawn_rngs stream discipline: no draw-after-spawn, no shared sibling rngs"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.filename not in _EXEMPT_FILENAMES

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        seen: Set[Tuple[int, int, str]] = set()
        for violation in self._check_all(ctx):
            key = (violation.line, violation.col, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation

    def _check_all(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_module_state(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    # -- (2) module-level rng state ------------------------------------

    def _check_module_state(self, ctx: FileContext) -> Iterator[Violation]:
        for stmt in self._module_level_stmts(ctx.tree.body):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            leaf = _contains_rng_construction(value)
            if leaf is not None:
                yield self.violation(
                    ctx,
                    stmt,
                    f"module-level rng state (`{leaf}(...)` at import time) "
                    "breaks one-seed reproducibility — construct generators "
                    "inside the entry point and thread them explicitly",
                )

    def _module_level_stmts(
        self, body: List[ast.stmt]
    ) -> Iterator[ast.stmt]:
        """Statements executed at import time (descends If/Try/With/class)."""
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                yield from self._module_level_stmts(
                    getattr(stmt, field_name, []) or []
                )
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._module_level_stmts(handler.body)

    # -- per-function flow checks --------------------------------------

    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Violation]:
        rng_vars: Set[str] = set()
        args = func.args  # type: ignore[attr-defined]
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if _is_rng_name(arg.arg):
                rng_vars.add(arg.arg)

        body: List[ast.stmt] = func.body  # type: ignore[attr-defined]
        # First sweep: name bindings from make_rng assignments.
        for node in self._own_walk(body):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if _leaf_name(node.value.func) in _FACTORY_NAMES:
                    rng_vars.update(_assigned_names(node))

        yield from self._check_draw_after_spawn(ctx, body, rng_vars)
        yield from self._check_sibling_threading(ctx, body, rng_vars)

    def _own_walk(self, body: List[ast.stmt]) -> Iterator[ast.AST]:
        """Walk a function body without descending into nested functions."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            yield from self._pruned(stmt)

    def _pruned(self, node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from self._pruned(child)

    # -- (1) draw-after-spawn ------------------------------------------

    def _check_draw_after_spawn(
        self, ctx: FileContext, body: List[ast.stmt], rng_vars: Set[str]
    ) -> Iterator[Violation]:
        spawned: dict = {}  # name -> spawn line
        rebinds: dict = {}  # name -> list of rebind lines
        calls: List[ast.Call] = []
        for node in self._own_walk(body):
            if isinstance(node, ast.Call):
                calls.append(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for name in _assigned_names(node):
                    rebinds.setdefault(name, []).append(node.lineno)
        for call in calls:
            if _leaf_name(call.func) in _SPAWN_NAMES and call.args:
                first = call.args[0]
                if isinstance(first, ast.Name) and first.id in rng_vars:
                    line = spawned.get(first.id)
                    if line is None or call.lineno < line:
                        spawned[first.id] = call.lineno
        if not spawned:
            return
        for call in sorted(calls, key=lambda c: c.lineno):
            name: Optional[str] = None
            is_respawn = False
            if isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ):
                name = call.func.value.id
            elif (
                _leaf_name(call.func) in _SPAWN_NAMES
                and call.args
                and isinstance(call.args[0], ast.Name)
            ):
                name = call.args[0].id
                is_respawn = True
            if name is None or name not in spawned:
                continue
            spawn_line = spawned[name]
            if call.lineno <= spawn_line:
                continue
            if any(
                spawn_line < r <= call.lineno
                for r in rebinds.get(name, ())
            ):
                continue
            what = (
                "passed to spawn_rngs again"
                if is_respawn
                else f"drawn from (`.{_leaf_name(call.func)}`)"
            )
            yield self.violation(
                ctx,
                call,
                f"rng `{name}` is {what} after spawn_rngs consumed it "
                f"(line {spawn_line}) — use the spawned child streams instead",
            )

    # -- (3) one rng threaded into sibling constructions ---------------

    def _check_sibling_threading(
        self, ctx: FileContext, body: List[ast.stmt], rng_vars: Set[str]
    ) -> Iterator[Violation]:
        for node in self._own_walk(body):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                bound = self._loop_bound_names(node)
                outer = rng_vars - bound
                if outer:
                    yield from self._flag_ctor_args(ctx, node.body, outer)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                bound = set()
                for gen in node.generators:
                    bound.update(
                        n.id
                        for n in ast.walk(gen.target)
                        if isinstance(n, ast.Name)
                    )
                outer = rng_vars - bound
                if outer:
                    elts = (
                        [node.key, node.value]
                        if isinstance(node, ast.DictComp)
                        else [node.elt]
                    )
                    yield from self._flag_ctor_args(ctx, elts, outer)

    def _loop_bound_names(self, loop: ast.AST) -> Set[str]:
        bound: Set[str] = set()
        target = getattr(loop, "target", None)
        if target is not None:
            bound.update(
                n.id for n in ast.walk(target) if isinstance(n, ast.Name)
            )
        for stmt in ast.walk(loop):
            if isinstance(stmt, ast.stmt):
                bound.update(_assigned_names(stmt))
        return bound

    def _flag_ctor_args(
        self,
        ctx: FileContext,
        nodes: List[ast.AST],
        outer_rngs: Set[str],
    ) -> Iterator[Violation]:
        for root in nodes:
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                leaf = _leaf_name(node.func)
                if not leaf or not leaf[0].isupper():
                    continue
                passed = [
                    arg.id
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                    if isinstance(arg, ast.Name) and arg.id in outer_rngs
                ]
                for name in passed:
                    yield self.violation(
                        ctx,
                        node,
                        f"rng `{name}` is threaded into sibling `{leaf}(...)` "
                        "constructions — spawn decorrelated child streams "
                        "with spawn_rngs and zip them instead",
                    )

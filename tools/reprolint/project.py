"""Pass 1: module registry and import-graph extraction.

The project pass turns a set of analyzed files into a
:class:`ProjectContext`: a registry mapping dotted module names to paths
plus, per module, the sequence of :class:`ImportRecord` edges found in
its AST. Project-scoped rules (layering, parity provenance) consume this
instead of re-walking trees, which is what keeps warm cached runs cheap —
import records are serialized into the incremental cache, so a run where
no file changed never re-parses anything yet still re-checks the whole
graph.

Module names are resolved the same way the import system would: a file
belongs to a package iff every directory up to the package root carries
an ``__init__.py``. Scripts outside any package (``benchmarks/*.py``,
``examples/*.py``) resolve to ``None`` and are invisible to the project
pass by construction.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ImportRecord",
    "ProjectContext",
    "ProjectRule",
    "collect_imports",
    "module_from_parts",
    "module_name",
]


@dataclass(frozen=True)
class ImportRecord:
    """One import statement edge, resolved to an absolute dotted target.

    ``target`` is the module named by the statement (for ``from m import
    a, b`` it is ``m``; the engine expands ``names`` against the module
    registry to catch submodule imports). Relative imports are resolved
    against the importing module before the record is created.
    """

    target: str
    names: Tuple[str, ...]
    line: int
    col: int
    type_checking: bool
    function_scope: bool

    def to_json(self) -> List[object]:
        return [
            self.target,
            list(self.names),
            self.line,
            self.col,
            self.type_checking,
            self.function_scope,
        ]

    @staticmethod
    def from_json(data: Sequence[object]) -> "ImportRecord":
        target, names, line, col, type_checking, function_scope = data
        return ImportRecord(
            target=str(target),
            names=tuple(str(n) for n in names),  # type: ignore[union-attr]
            line=int(line),  # type: ignore[arg-type]
            col=int(col),  # type: ignore[arg-type]
            type_checking=bool(type_checking),
            function_scope=bool(function_scope),
        )


def module_name(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, or ``None`` outside any package."""
    try:
        resolved = path.resolve()
    except OSError:
        return None
    if resolved.name == "__init__.py":
        parts: List[str] = []
        pkg_dir = resolved.parent
    else:
        parts = [resolved.stem]
        pkg_dir = resolved.parent
    if not (pkg_dir / "__init__.py").is_file():
        return None
    while (pkg_dir / "__init__.py").is_file():
        parts.append(pkg_dir.name)
        pkg_dir = pkg_dir.parent
    return ".".join(reversed(parts))


def module_from_parts(path: Path) -> Optional[str]:
    """Virtual-path fallback: derive ``repro.x.y`` from path components.

    Used for rule applicability when linting in-memory sources at paths
    that do not exist on disk (the self-test fixtures). Returns the
    dotted tail starting at the ``repro`` component, or ``None``.
    """
    parts = path.parts
    if "repro" not in parts:
        return None
    tail = list(parts[parts.index("repro"):])
    tail[-1] = Path(tail[-1]).stem
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id in {"typing", "t", "typing_extensions"}
    )


class _ImportVisitor(ast.NodeVisitor):
    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.records: List[ImportRecord] = []
        self._type_checking = 0
        self._function = 0

    # -- scope tracking ------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking += 1
            for child in node.body:
                self.visit(child)
            self._type_checking -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        self._function += 1
        self.generic_visit(node)
        self._function -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- imports -------------------------------------------------------

    def _add(self, target: str, names: Tuple[str, ...], node: ast.stmt) -> None:
        self.records.append(
            ImportRecord(
                target=target,
                names=names,
                line=node.lineno,
                col=node.col_offset,
                type_checking=self._type_checking > 0,
                function_scope=self._function > 0,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, (), node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = self._resolve(node)
        if target is not None:
            self._add(target, tuple(a.name for a in node.names), node)

    def _resolve(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        base_parts = self.module.split(".")
        # A module's level-1 base is its own package; a package __init__'s
        # level-1 base is the package itself.
        drop = (0 if self.is_package else 1) + (node.level - 1)
        if drop > len(base_parts):
            return None  # relative import escaping the package root
        base = base_parts[: len(base_parts) - drop] if drop else base_parts
        if not base:
            return None
        if node.module:
            return ".".join(base) + "." + node.module
        return ".".join(base)


def collect_imports(
    tree: ast.Module, module: str, is_package: bool
) -> Tuple[ImportRecord, ...]:
    """Extract resolved import edges from a parsed module."""
    visitor = _ImportVisitor(module, is_package)
    visitor.visit(tree)
    return tuple(visitor.records)


@dataclass
class ProjectContext:
    """The whole-repo view consumed by project-scoped rules."""

    modules: Dict[str, Path] = field(default_factory=dict)
    imports: Dict[str, Tuple[ImportRecord, ...]] = field(default_factory=dict)

    def add(
        self, module: str, path: Path, records: Tuple[ImportRecord, ...]
    ) -> None:
        if module in self.modules:
            return  # first registration wins on duplicate module names
        self.modules[module] = path
        self.imports[module] = records

    def resolved_edges(
        self, module: str
    ) -> Iterator[Tuple[str, ImportRecord]]:
        """Expand one module's records into (imported module, record) pairs.

        ``from pkg import sub`` names the submodule ``pkg.sub`` when that
        module exists in the registry; otherwise the edge targets ``pkg``
        itself (the name is an attribute).
        """
        for record in self.imports.get(module, ()):
            expanded = False
            for name in record.names:
                candidate = f"{record.target}.{name}"
                if candidate in self.modules:
                    expanded = True
                    yield candidate, record
            if not expanded:
                yield record.target, record

    def signature(self) -> str:
        """Content hash of the import graph (targets + gating flags).

        Changes whenever any edge appears, disappears, or moves between
        runtime and ``TYPE_CHECKING`` scope — the exact set of events that
        can change project-pass results.
        """
        digest = hashlib.sha256()
        for module in sorted(self.imports):
            digest.update(module.encode())
            for target, record in sorted(
                self.resolved_edges(module), key=lambda e: (e[0], e[1].line)
            ):
                digest.update(
                    f"|{target}:{int(record.type_checking)}"
                    f":{int(record.function_scope)}".encode()
                )
            digest.update(b"\n")
        return digest.hexdigest()


class ProjectRule:
    """Mixin marker for rules that run in the project pass.

    Project rules implement :meth:`check_module` instead of ``check``;
    the engine calls it once per registered module with the module's
    cached import records and the full :class:`ProjectContext`.
    """

    scope = "project"

    def check_module(
        self,
        module: str,
        path: Path,
        records: Tuple[ImportRecord, ...],
        project: ProjectContext,
    ) -> Iterator[object]:
        raise NotImplementedError

"""Distill the edge-saturation admission study into BENCH_pr7.json.

Usage: PYTHONPATH=src python tools/bench_pr7.py <output-json>

Runs ``repro.experiments.edge.run_saturation_study`` — the same flash
crowd of SC1-CF1 sessions driven through the same undersized multi-server
topology twice, once with admission control + device fallback and once
wide open — and records the headline pair the docs quote: pooled p95 of
Eq. 4 normalized latency under each regime. The study is a pure function
of its seed, so the committed report is reproducible byte-for-byte.

The distilled report refuses to write if admission control does not
strictly beat open admission on the ε tail — that ordering is the whole
point of the subsystem, so its loss is a regression, not a data point.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict

from repro.experiments.edge import SaturationStudyResult, run_saturation_study


def distill(result: SaturationStudyResult) -> Dict[str, Any]:
    if result.epsilon_tail_win <= 0:
        raise SystemExit(
            "regression: admission control did not beat open admission "
            f"(p95 eps {result.p95_epsilon_admission:.4f} vs "
            f"{result.p95_epsilon_open:.4f})"
        )
    admitted = result.admission.topology_stats or {}
    opened = result.open_admission.topology_stats or {}
    return {
        "source": "repro.experiments.edge (tools/bench_pr7.py, make bench)",
        "setup": {
            "n_servers": result.n_servers,
            "n_sessions": result.n_sessions,
            "placement_policy": admitted.get("placement_policy"),
        },
        "headline": {
            "p95_eps_open_admission": round(result.p95_epsilon_open, 6),
            "p95_eps_admission_fallback": round(result.p95_epsilon_admission, 6),
            "eps_tail_win": round(result.epsilon_tail_win, 6),
        },
        "admission_run": {
            "rejections": admitted.get("rejections", 0),
            "shed_fallbacks": admitted.get("sheds", 0),
            "placements": admitted.get("placements", {}),
            "p50_latency_ms": round(
                result.admission.aggregates.p50_latency_ms, 6
            ),
            "p95_latency_ms": round(
                result.admission.aggregates.p95_latency_ms, 6
            ),
        },
        "open_run": {
            "rejections": opened.get("rejections", 0),
            "shed_fallbacks": opened.get("sheds", 0),
            "placements": opened.get("placements", {}),
            "p50_latency_ms": round(
                result.open_admission.aggregates.p50_latency_ms, 6
            ),
            "p95_latency_ms": round(
                result.open_admission.aggregates.p95_latency_ms, 6
            ),
        },
    }


def main() -> None:
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    report = distill(run_saturation_study())
    with open(sys.argv[1], "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {sys.argv[1]}: {json.dumps(report['headline'])}")


if __name__ == "__main__":
    main()

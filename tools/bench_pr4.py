"""Distill the backend microbenchmarks into the committed BENCH_pr4.json.

Usage: python tools/bench_pr4.py <pytest-benchmark-json> <output-json>

Reads the raw ``--benchmark-json`` output of ``benchmarks/test_microbench.py``
and reduces the three PR-4 benches to the numbers the performance docs quote:
median ns per configuration for the scalar and batched grid paths (plus
their ratio, the batching speedup) and the fleet scheduler's tick rate.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict


def _bench(raw: Dict[str, Any], name: str) -> Dict[str, Any]:
    for entry in raw["benchmarks"]:
        if entry["name"] == name:
            return entry
    raise SystemExit(f"benchmark {name!r} not found in the raw report")


def distill(raw: Dict[str, Any]) -> Dict[str, Any]:
    scalar = _bench(raw, "test_frontier_grid_scalar")
    batched = _bench(raw, "test_frontier_grid_batched")
    fleet = _bench(raw, "test_fleet_tick_throughput")

    n_configs = int(scalar["extra_info"]["n_configs"])
    scalar_ns = scalar["stats"]["median"] * 1e9 / n_configs
    batched_ns = batched["stats"]["median"] * 1e9 / n_configs
    ticks = int(fleet["extra_info"]["ticks"])
    fleet_s = fleet["stats"]["median"]

    return {
        "source": "benchmarks/test_microbench.py (make bench)",
        "grid": {
            "n_configs": n_configs,
            "scalar_ns_per_config": round(scalar_ns, 1),
            "batched_ns_per_config": round(batched_ns, 1),
            "speedup": round(scalar_ns / batched_ns, 2),
        },
        "fleet": {
            "ticks": ticks,
            "median_s": round(fleet_s, 4),
            "ticks_per_s": round(ticks / fleet_s, 1),
        },
    }


def main() -> None:
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1], encoding="utf-8") as fh:
        raw = json.load(fh)
    report = distill(raw)
    with open(sys.argv[2], "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {sys.argv[2]}: {json.dumps(report['grid'])}")


if __name__ == "__main__":
    main()
